//! Per-model single-link scoring latency — the microbench behind the
//! Fig. 7 inference-time ordering (subgraph methods ≫ embedding
//! methods).

use criterion::{criterion_group, criterion_main, Criterion};
use dekg_baselines::{EmbeddingConfig, Grail, RuleN, SubgraphModelConfig, Tact, TransE};
use dekg_core::{DekgIlp, DekgIlpConfig, InferenceGraph, LinkPredictor, TrainableModel};
use dekg_datasets::{generate, DatasetProfile, DekgDataset, RawKg, SplitKind, SynthConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn dataset() -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.08);
    generate(&SynthConfig::for_profile(profile, 5))
}

fn bench_scoring(c: &mut Criterion) {
    let data = dataset();
    let graph = InferenceGraph::from_dataset(&data);
    let links = &data.test_bridging[..10];
    let mut rng = ChaCha8Rng::seed_from_u64(0);

    // Lightly trained instances (scoring cost is training-independent).
    let mut transe =
        TransE::new(EmbeddingConfig { epochs: 2, ..EmbeddingConfig::quick() }, &data, &mut rng);
    transe.fit(&data, &mut rng);
    let mut rulen = RuleN::new(Default::default());
    rulen.fit(&data, &mut rng);
    let grail = Grail::new(SubgraphModelConfig::quick(), &data, &mut rng);
    let tact = Tact::new(SubgraphModelConfig::quick(), &data, &mut rng);
    let ilp = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);

    let mut group = c.benchmark_group("score_10_links");
    group.sample_size(20);
    let models: [(&str, &dyn LinkPredictor); 5] = [
        ("TransE", &transe),
        ("RuleN", &rulen),
        ("Grail", &grail),
        ("TACT", &tact),
        ("DEKG-ILP", &ilp),
    ];
    for (name, model) in models {
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.score_batch(&graph, links)));
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_scoring
}
criterion_main!(benches);
