//! Microbenchmarks for CLRM: entity fusion (Eq. 3), DistMult scoring
//! (Eq. 4) and contrastive sampling (o₁–o₃).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dekg_core::clrm::{sampling, Clrm};
use dekg_core::InferenceGraph;
use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
use dekg_kg::{EntityId, Triple};
use dekg_tensor::{Graph, ParamStore};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn setup() -> (InferenceGraph, Clrm, ParamStore, Vec<Triple>) {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.12);
    let dataset = generate(&SynthConfig::for_profile(profile, 4));
    let graph = InferenceGraph::from_dataset(&dataset);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut params = ParamStore::new();
    let clrm = Clrm::new(dataset.num_relations, 32, "clrm", &mut params, &mut rng);
    let triples = dataset.original.triples()[..64].to_vec();
    (graph, clrm, params, triples)
}

fn bench_fusion(c: &mut Criterion) {
    let (graph, clrm, params, _) = setup();
    let mut group = c.benchmark_group("clrm_fusion");
    for batch in [1usize, 16, 64] {
        let entities: Vec<EntityId> = (0..batch as u32).map(EntityId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                black_box(clrm.fuse_entities(&mut g, &params, &graph.tables, &entities));
            });
        });
    }
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let (graph, clrm, params, triples) = setup();
    c.bench_function("clrm_distmult_score_64", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            black_box(clrm.score(&mut g, &params, &graph.tables, &triples));
        });
    });
}

fn bench_contrastive_sampling(c: &mut Criterion) {
    let (graph, _, _, _) = setup();
    let row = graph.tables.row(EntityId(0)).clone();
    let num_relations = graph.num_relations;
    c.bench_function("contrastive_sample_pairs_10", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| black_box(sampling::sample_pairs(&row, num_relations, 2.0, 10, &mut rng)));
    });
}

fn bench_contrastive_loss(c: &mut Criterion) {
    let (graph, clrm, params, _) = setup();
    let row = graph.tables.row(EntityId(0)).clone();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (pos, neg) = sampling::sample_pairs(&row, graph.num_relations, 2.0, 10, &mut rng);
    c.bench_function("contrastive_loss_10_pairs", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let loss = clrm.contrastive_loss(&mut g, &params, &row, &pos, &neg, 1.0);
            black_box(g.backward(loss));
        });
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets =
    bench_fusion,
    bench_scoring,
    bench_contrastive_sampling,
    bench_contrastive_loss

}
criterion_main!(benches);
