//! Microbenchmarks for the autograd substrate: matmul forward +
//! backward, gather/scatter, and a full optimizer step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dekg_tensor::optim::{Adam, Optimizer};
use dekg_tensor::{init, Graph, ParamStore, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("autograd_matmul");
    for n in [32usize, 64, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let a = ps.insert("a", init::xavier_uniform([n, n], &mut rng));
        let b_t = init::xavier_uniform([n, n], &mut rng);
        group.bench_with_input(BenchmarkId::new("forward_backward", n), &n, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let av = g.param(&ps, a);
                let bv = g.constant(b_t.clone());
                let prod = g.matmul(av, bv);
                let loss = g.sum_all(prod);
                black_box(g.backward(loss));
            });
        });
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut ps = ParamStore::new();
    let table = ps.insert("t", init::xavier_uniform([1000, 32], &mut rng));
    let idx: Vec<usize> = (0..256).map(|i| (i * 37) % 1000).collect();
    c.bench_function("gather_scatter_roundtrip", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let t = g.param(&ps, table);
            let rows = g.gather_rows(t, &idx);
            let agg = g.scatter_add_rows(rows, &idx, 1000);
            let loss = g.sum_all(agg);
            black_box(g.backward(loss));
        });
    });
}

fn bench_training_step(c: &mut Criterion) {
    // A representative two-layer MLP step, the shape of one GSM layer.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut ps = ParamStore::new();
    let w1 = ps.insert("w1", init::xavier_uniform([64, 32], &mut rng));
    let w2 = ps.insert("w2", init::xavier_uniform([32, 1], &mut rng));
    let x = init::normal([128, 64], 0.0, 1.0, &mut rng);
    let y = init::normal([128, 1], 0.0, 1.0, &mut rng);
    c.bench_function("mlp_training_step", |b| {
        let mut opt = Adam::new(0.01);
        b.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let w1v = g.param(&ps, w1);
            let h = g.matmul(xv, w1v);
            let hr = g.relu(h);
            let w2v = g.param(&ps, w2);
            let out = g.matmul(hr, w2v);
            let yv = g.constant(y.clone());
            let d = g.sub(out, yv);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
            black_box(());
        });
    });
}

fn bench_elementwise_chain(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let x = init::normal([4096], 0.0, 1.0, &mut rng);
    c.bench_function("elementwise_chain_4096", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let v = g.constant(x.clone());
            let s = g.sigmoid(v);
            let t = g.tanh(s);
            let e = g.exp(t);
            let out = g.sum_all(e);
            black_box(g.value(out).item());
        });
    });
    // Baseline: the same math on a raw tensor without the tape.
    c.bench_function("elementwise_chain_raw_4096", |b| {
        b.iter(|| {
            let y: f32 = x.data().iter().map(|&v| (1.0 / (1.0 + (-v).exp())).tanh().exp()).sum();
            black_box(y);
        });
    });
    let _ = Tensor::zeros([1]);
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets =
    bench_matmul,
    bench_gather_scatter,
    bench_training_step,
    bench_elementwise_chain

}
criterion_main!(benches);
