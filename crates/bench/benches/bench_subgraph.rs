//! Microbenchmarks for enclosing-subgraph extraction: union (DEKG-ILP)
//! vs intersection (GraIL) modes, on enclosing vs bridging endpoint
//! pairs. Extraction is the dominant cost of subgraph scoring, so this
//! is the component behind the Fig. 7 / Table IV inference-time gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dekg_core::InferenceGraph;
use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
use dekg_kg::{ExtractionMode, SubgraphExtractor};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.15);
    let dataset = generate(&SynthConfig::for_profile(profile, 1));
    let graph = InferenceGraph::from_dataset(&dataset);
    let enclosing = dataset.test_enclosing[0];
    let bridging = dataset.test_bridging[0];

    let mut group = c.benchmark_group("subgraph_extraction");
    for (mode_name, mode) in
        [("union", ExtractionMode::Union), ("intersection", ExtractionMode::Intersection)]
    {
        for (class, link) in [("enclosing", enclosing), ("bridging", bridging)] {
            group.bench_with_input(BenchmarkId::new(mode_name, class), &link, |b, link| {
                let ex = SubgraphExtractor::new(&graph.adjacency, 2, mode);
                b.iter(|| black_box(ex.extract(link.head, link.tail, None)));
            });
        }
    }
    group.finish();
}

fn bench_hop_depth(c: &mut Criterion) {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.15);
    let dataset = generate(&SynthConfig::for_profile(profile, 2));
    let graph = InferenceGraph::from_dataset(&dataset);
    let link = dataset.test_enclosing[0];

    let mut group = c.benchmark_group("subgraph_hops");
    for hops in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(hops), &hops, |b, &hops| {
            let ex = SubgraphExtractor::new(&graph.adjacency, hops, ExtractionMode::Union);
            b.iter(|| black_box(ex.extract(link.head, link.tail, None)));
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_extraction, bench_hop_depth
}
criterion_main!(benches);
