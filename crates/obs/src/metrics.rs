//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with a Prometheus-style text exposition and a
//! serializable snapshot.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`ed atomics: registration takes the registry mutex once, after
//! which updates are lock-free. Hot call sites cache their handle in a
//! `OnceLock` so the per-event cost is a relaxed `fetch_add`.
//!
//! **Determinism.** Counter and histogram updates are additive `u64`
//! operations — commutative, so totals are identical at any thread
//! count. Gauges are last-write-wins and must only be set from serial
//! code (the training loop), never inside a parallel fan-out.
//! [`Registry::reset`] zeroes values *in place*, keeping every handle
//! valid, so harnesses can re-baseline between runs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` metric (stored as bits in an atomic).
///
/// Set only from serial sections — see the module docs.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state of one histogram.
#[derive(Debug)]
struct HistogramCore {
    /// Upper-inclusive bucket bounds, strictly increasing. An implicit
    /// `+Inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over integer observations (node counts,
/// candidate counts, …). Integer-valued on purpose: the sum stays an
/// additive `u64`, keeping the determinism contract float-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let slot = core.bounds.partition_point(|&b| b < v);
        core.buckets[slot].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Per-bucket counts (non-cumulative), the `+Inf` slot last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts, `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Point-in-time state of a whole registry. Serializable through the
/// serde shims (the `"metrics"` JSONL event carries one) and directly
/// comparable — the thread-count-invariance tests assert snapshot
/// equality across worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A named-metric registry. The process-global instance is
/// [`global()`]; tests construct private ones with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        Counter(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The gauge named `name`, registering it at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())));
        Gauge(Arc::clone(cell))
    }

    /// The histogram named `name`, registering it with `bounds`
    /// (upper-inclusive, strictly increasing) on first use. Later
    /// callers get the existing instance; passing different bounds for
    /// the same name is a programming error (caught in debug builds).
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name:?} needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram {name:?} bounds must increase");
        let mut map = lock(&self.histograms);
        let core = map.entry(name.to_owned()).or_insert_with(|| {
            Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })
        });
        debug_assert_eq!(core.bounds, bounds, "histogram {name:?} re-registered with new bounds");
        Histogram(Arc::clone(core))
    }

    /// Zeroes every registered metric **in place** — existing handles
    /// (including `OnceLock`-cached ones at call sites) stay attached.
    pub fn reset(&self) {
        for cell in lock(&self.counters).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in lock(&self.gauges).values() {
            cell.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for core in lock(&self.histograms).values() {
            for b in &core.buckets {
                b.store(0, Ordering::Relaxed);
            }
            core.count.store(0, Ordering::Relaxed);
            core.sum.store(0, Ordering::Relaxed);
        }
    }

    /// A copy of every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(k, core)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: core.bounds.clone(),
                        buckets: core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Prometheus text exposition (the `text/plain; version=0.0.4`
    /// format): `# TYPE` lines, cumulative `_bucket{le=…}` series per
    /// histogram, `_sum`/`_count` totals. Names are emitted as
    /// registered — use `snake_case` with unit suffixes.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                cumulative += bucket;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }
}

/// The process-global registry all instrumentation reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counters["hits_total"], 5);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        let g = r.gauge("loss");
        g.set(2.5);
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        assert_eq!(r.snapshot().gauges["loss"], 1.25);
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let r = Registry::new();
        let h = r.histogram("nodes", &[2, 4, 8]);
        for v in [0, 2, 3, 4, 8, 9, 100] {
            h.observe(v);
        }
        // le=2: {0,2}; le=4: {3,4}; le=8: {8}; +Inf: {9,100}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 126);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = Registry::new();
        let c = r.counter("c_total");
        let h = r.histogram("h", &[1]);
        c.inc();
        h.observe(5);
        r.reset();
        // Handles acquired before the reset still work and read zero.
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.snapshot().counters["c_total"], 1);
    }

    #[test]
    fn parallel_counting_is_thread_count_invariant() {
        // 4 threads × 1000 increments vs a serial 4000: identical.
        let r = Registry::new();
        let c = r.counter("par_total");
        let h = r.histogram("par_hist", &[10, 100]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i % 150);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let serial = Registry::new();
        let hs = serial.histogram("par_hist", &[10, 100]);
        for _ in 0..4 {
            for i in 0..1000u64 {
                hs.observe(i % 150);
            }
        }
        assert_eq!(h.bucket_counts(), hs.bucket_counts());
        assert_eq!(h.sum(), hs.sum());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.gauge("g").set(0.5);
        r.histogram("h", &[1, 2]).observe(2);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        // And the re-serialization is byte-identical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("dekg_demo_total").add(2);
        r.gauge("dekg_demo_loss").set(1.5);
        let h = r.histogram("dekg_demo_nodes", &[2, 4]);
        h.observe(1);
        h.observe(3);
        h.observe(9);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE dekg_demo_total counter\ndekg_demo_total 2\n"));
        assert!(text.contains("# TYPE dekg_demo_loss gauge\ndekg_demo_loss 1.5\n"));
        assert!(text.contains("dekg_demo_nodes_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("dekg_demo_nodes_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("dekg_demo_nodes_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dekg_demo_nodes_sum 13\ndekg_demo_nodes_count 3\n"));
    }

    #[test]
    #[should_panic(expected = "bounds must increase")]
    fn unsorted_bounds_rejected() {
        Registry::new().histogram("bad", &[4, 2]);
    }
}
