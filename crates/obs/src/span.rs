//! Scope timers: named spans that accumulate per-phase totals.
//!
//! A span is a lexical scope timed by a [`SpanTimer`] guard — the
//! [`crate::span!`] macro binds one, and its `Drop` folds the elapsed
//! time into a process-global table keyed by the span's static name.
//! Totals are *CPU-seconds summed across workers*: four rayon threads
//! spending 1 s each inside `span!("score_batch")` contribute 4 s.
//! Phase breakdowns derived from spans (eval extraction vs. scoring
//! vs. ranking) are therefore work measurements, not wall-clock.
//!
//! **Zero-cost-when-disabled.** [`set_spans_enabled`]`(false)` turns
//! [`SpanTimer::enter`] into a single relaxed atomic load returning an
//! inert guard — no clock read, no lock. The perf harness disables
//! spans so timing comparisons against the seed stay fair.
//!
//! Span *seconds* are wall-clock measurements and sit outside the
//! determinism contract; span *counts* are additive `u64`s and inside
//! it (see the crate docs).
//!
//! **Hierarchical traces.** When tracing is armed
//! ([`set_tracing_enabled`], implied by `--chrome-trace`), every span
//! additionally carries a `trace_id`/`span_id`/`parent_id` triple
//! maintained by a thread-local span stack: the innermost open span on
//! the same thread is the parent. Each closing span emits a `"span"`
//! JSONL event to the trace sink and a complete event to the Chrome
//! trace buffer (see [`crate::chrome`]). The flat table keeps working
//! unchanged either way, and with tracing off (the default) the only
//! extra cost per span is one relaxed atomic load.

use crate::event::{trace_active, Event};
use serde::{Deserialize, Number, Serialize, Value};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);
static TABLE: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

/// Master switch for hierarchical trace ids (off by default; flat
/// aggregation works regardless).
static TRACING: AtomicBool = AtomicBool::new(false);

/// Shared allocator for trace and span ids. Starts at 1 so 0 can mean
/// "none" (root spans have `parent_id = 0`).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocator for stable per-thread track ids (`ThreadId::as_u64` is
/// unstable, so we hand out our own).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The trace this thread's spans belong to; 0 = unassigned (a
    /// fresh trace is allocated lazily when the first span opens).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    /// Span ids of the scopes currently open on this thread,
    /// innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's track id for Chrome trace output.
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Arms or disarms hierarchical trace-id tracking. Configuring a
/// Chrome trace path arms it automatically.
pub fn set_tracing_enabled(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// True when hierarchical trace-id tracking is armed.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Allocates a fresh trace id (for example, one per served request).
pub fn new_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The trace id this thread's spans are currently tagged with
/// (0 = none assigned yet).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// Tags subsequent spans on this thread with `trace_id`. `dekg serve`
/// workers call this when picking up a job so the request's trace id
/// follows it across the queue boundary.
pub fn set_current_trace(trace_id: u64) {
    CURRENT_TRACE.with(|t| t.set(trace_id));
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Identity of one open span in a hierarchical trace.
#[derive(Debug, Clone, Copy)]
struct SpanIds {
    trace: u64,
    span: u64,
    parent: u64,
}

fn table() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, SpanStat>> {
    TABLE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Enables or disables span timing globally. Disabled timers skip the
/// clock read and table update entirely.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when span timing is active (the default).
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the accumulated span table.
pub fn reset_spans() {
    table().clear();
}

/// Accumulated state of one span: how many scopes closed and their
/// total elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanStat {
    /// Number of completed scopes.
    pub count: u64,
    /// Total elapsed CPU-seconds across those scopes (wall-clock
    /// measurement — outside the determinism contract).
    pub seconds: f64,
}

/// A point-in-time copy of the span table, taken with
/// [`span_snapshot`]. Two snapshots bracket a region of interest;
/// [`SpanSnapshot::diff`] isolates the spans that closed in between.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Per-span accumulated stats, keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl SpanSnapshot {
    /// The stats for `name`, if any scope with that name has closed.
    pub fn get(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// The per-span increase from `earlier` to `self`, dropping spans
    /// with no new completions. Counts subtract saturating; seconds
    /// clamp at zero.
    #[must_use]
    pub fn diff(&self, earlier: &SpanSnapshot) -> SpanSnapshot {
        let spans = self
            .spans
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier.spans.get(name).copied().unwrap_or_default();
                let count = now.count.saturating_sub(before.count);
                if count == 0 {
                    return None;
                }
                let seconds = (now.seconds - before.seconds).max(0.0);
                Some((name.clone(), SpanStat { count, seconds }))
            })
            .collect();
        SpanSnapshot { spans }
    }
}

/// A copy of the current global span table.
pub fn span_snapshot() -> SpanSnapshot {
    let spans = table().iter().map(|(&k, &v)| (k.to_owned(), v)).collect();
    SpanSnapshot { spans }
}

/// The guard returned by [`crate::span!`]. Records the elapsed time
/// into the global table on drop; inert (no clock, no lock) when spans
/// are disabled.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    start: Option<Instant>,
    ids: Option<SpanIds>,
}

impl SpanTimer {
    /// Starts a timer for `name`; prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanTimer {
        let start = spans_enabled().then(Instant::now);
        let ids = (start.is_some() && tracing_enabled()).then(|| {
            let trace = CURRENT_TRACE.with(|t| {
                if t.get() == 0 {
                    t.set(new_trace_id());
                }
                t.get()
            });
            let span = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let parent = STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied().unwrap_or(0);
                s.push(span);
                parent
            });
            SpanIds { trace, span, parent }
        });
        SpanTimer { name, start, ids }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let seconds = start.elapsed().as_secs_f64();
        {
            let mut map = table();
            let stat = map.entry(self.name).or_default();
            stat.count += 1;
            stat.seconds += seconds;
        }
        let Some(ids) = self.ids else { return };
        // Pop this span from the thread's open stack. Guards normally
        // drop in reverse open order, but search from the top anyway so
        // an out-of-order drop (e.g. `mem::drop` games in tests) can't
        // corrupt later parent links.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == ids.span) {
                s.truncate(pos);
            }
        });
        if trace_active() {
            Event::new("span")
                .field_str("name", self.name)
                .field_u64("trace_id", ids.trace)
                .field_u64("span_id", ids.span)
                .field_u64("parent_id", ids.parent)
                .field_f64("seconds", seconds)
                .emit_trace();
        }
        crate::chrome::push_event(
            self.name,
            thread_tid(),
            start,
            seconds,
            ids.trace,
            ids.span,
            ids.parent,
        );
    }
}

/// Times the rest of the enclosing scope under a static span name:
///
/// ```
/// # fn work() {}
/// let _span = dekg_obs::span!("extract_subgraph");
/// work(); // counted against extract_subgraph until scope end
/// ```
///
/// Bind the guard (`let _span = …`) — a bare `span!(…);` statement
/// drops it immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanTimer::enter($name)
    };
}

/// Emits a `"spans"` event carrying the accumulated table to the trace
/// sink (dropped when none). An `epoch` field is included when given,
/// letting per-epoch emissions interleave with the final summary.
pub fn emit_span_event(epoch: Option<u64>) {
    if !trace_active() {
        return;
    }
    let mut event = Event::new("spans");
    if let Some(epoch) = epoch {
        event = event.field_u64("epoch", epoch);
    }
    let snap = span_snapshot();
    let pairs = snap
        .spans
        .iter()
        .map(|(name, stat)| {
            let fields = vec![
                ("count".to_owned(), Value::Num(Number::U(stat.count))),
                ("seconds".to_owned(), Value::Num(Number::F(stat.seconds))),
            ];
            (name.clone(), Value::Object(fields))
        })
        .collect();
    event.field_value("spans", Value::Object(pairs)).emit_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_time() {
        let _guard = crate::test_lock();
        reset_spans();
        for _ in 0..3 {
            let _span = crate::span!("test_phase_a");
            std::hint::black_box(0);
        }
        let snap = span_snapshot();
        let stat = snap.get("test_phase_a").expect("span recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.seconds >= 0.0);
        reset_spans();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        reset_spans();
        set_spans_enabled(false);
        {
            let _span = crate::span!("test_phase_off");
        }
        assert!(span_snapshot().get("test_phase_off").is_none());
        set_spans_enabled(true);
        reset_spans();
    }

    #[test]
    fn diff_isolates_new_completions() {
        let _guard = crate::test_lock();
        reset_spans();
        {
            let _a = crate::span!("test_diff_a");
        }
        let before = span_snapshot();
        {
            let _a = crate::span!("test_diff_a");
        }
        {
            let _b = crate::span!("test_diff_b");
        }
        let delta = span_snapshot().diff(&before);
        assert_eq!(delta.get("test_diff_a").unwrap().count, 1);
        assert_eq!(delta.get("test_diff_b").unwrap().count, 1);
        // Unchanged spans are dropped from the diff.
        let empty = span_snapshot().diff(&span_snapshot());
        assert!(empty.spans.is_empty());
        reset_spans();
    }

    #[test]
    fn tracing_assigns_parent_child_ids() {
        let _guard = crate::test_lock();
        reset_spans();
        set_tracing_enabled(true);
        set_current_trace(0); // force lazy trace allocation on this thread
        let (outer_ids, inner_ids);
        {
            let outer = crate::span!("test_trace_outer");
            {
                let inner = crate::span!("test_trace_inner");
                inner_ids = inner.ids.expect("inner span has ids");
            }
            outer_ids = outer.ids.expect("outer span has ids");
        }
        assert_eq!(inner_ids.trace, outer_ids.trace, "same thread, same trace");
        assert_eq!(inner_ids.parent, outer_ids.span, "inner nests under outer");
        assert_eq!(outer_ids.parent, 0, "outer is a root span");
        assert_ne!(inner_ids.span, outer_ids.span);
        // The stack fully unwound: a new root span has no parent.
        {
            let next = crate::span!("test_trace_next");
            assert_eq!(next.ids.expect("ids").parent, 0);
        }
        set_tracing_enabled(false);
        set_current_trace(0);
        reset_spans();
    }

    #[test]
    fn tracing_disabled_allocates_no_ids() {
        let _guard = crate::test_lock();
        set_tracing_enabled(false);
        let t = crate::span!("test_trace_off");
        assert!(t.ids.is_none());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut spans = BTreeMap::new();
        spans.insert("phase".to_owned(), SpanStat { count: 2, seconds: 0.5 });
        let snap = SpanSnapshot { spans };
        let json = serde_json::to_string(&snap).unwrap();
        let back: SpanSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
