//! Scope timers: named spans that accumulate per-phase totals.
//!
//! A span is a lexical scope timed by a [`SpanTimer`] guard — the
//! [`crate::span!`] macro binds one, and its `Drop` folds the elapsed
//! time into a process-global table keyed by the span's static name.
//! Totals are *CPU-seconds summed across workers*: four rayon threads
//! spending 1 s each inside `span!("score_batch")` contribute 4 s.
//! Phase breakdowns derived from spans (eval extraction vs. scoring
//! vs. ranking) are therefore work measurements, not wall-clock.
//!
//! **Zero-cost-when-disabled.** [`set_spans_enabled`]`(false)` turns
//! [`SpanTimer::enter`] into a single relaxed atomic load returning an
//! inert guard — no clock read, no lock. The perf harness disables
//! spans so timing comparisons against the seed stay fair.
//!
//! Span *seconds* are wall-clock measurements and sit outside the
//! determinism contract; span *counts* are additive `u64`s and inside
//! it (see the crate docs).

use crate::event::{trace_active, Event};
use serde::{Deserialize, Number, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);
static TABLE: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

fn table() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, SpanStat>> {
    TABLE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Enables or disables span timing globally. Disabled timers skip the
/// clock read and table update entirely.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when span timing is active (the default).
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the accumulated span table.
pub fn reset_spans() {
    table().clear();
}

/// Accumulated state of one span: how many scopes closed and their
/// total elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanStat {
    /// Number of completed scopes.
    pub count: u64,
    /// Total elapsed CPU-seconds across those scopes (wall-clock
    /// measurement — outside the determinism contract).
    pub seconds: f64,
}

/// A point-in-time copy of the span table, taken with
/// [`span_snapshot`]. Two snapshots bracket a region of interest;
/// [`SpanSnapshot::diff`] isolates the spans that closed in between.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Per-span accumulated stats, keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl SpanSnapshot {
    /// The stats for `name`, if any scope with that name has closed.
    pub fn get(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// The per-span increase from `earlier` to `self`, dropping spans
    /// with no new completions. Counts subtract saturating; seconds
    /// clamp at zero.
    #[must_use]
    pub fn diff(&self, earlier: &SpanSnapshot) -> SpanSnapshot {
        let spans = self
            .spans
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier.spans.get(name).copied().unwrap_or_default();
                let count = now.count.saturating_sub(before.count);
                if count == 0 {
                    return None;
                }
                let seconds = (now.seconds - before.seconds).max(0.0);
                Some((name.clone(), SpanStat { count, seconds }))
            })
            .collect();
        SpanSnapshot { spans }
    }
}

/// A copy of the current global span table.
pub fn span_snapshot() -> SpanSnapshot {
    let spans = table().iter().map(|(&k, &v)| (k.to_owned(), v)).collect();
    SpanSnapshot { spans }
}

/// The guard returned by [`crate::span!`]. Records the elapsed time
/// into the global table on drop; inert (no clock, no lock) when spans
/// are disabled.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Starts a timer for `name`; prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanTimer {
        let start = spans_enabled().then(Instant::now);
        SpanTimer { name, start }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let seconds = start.elapsed().as_secs_f64();
            let mut map = table();
            let stat = map.entry(self.name).or_default();
            stat.count += 1;
            stat.seconds += seconds;
        }
    }
}

/// Times the rest of the enclosing scope under a static span name:
///
/// ```
/// # fn work() {}
/// let _span = dekg_obs::span!("extract_subgraph");
/// work(); // counted against extract_subgraph until scope end
/// ```
///
/// Bind the guard (`let _span = …`) — a bare `span!(…);` statement
/// drops it immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanTimer::enter($name)
    };
}

/// Emits a `"spans"` event carrying the accumulated table to the trace
/// sink (dropped when none). An `epoch` field is included when given,
/// letting per-epoch emissions interleave with the final summary.
pub fn emit_span_event(epoch: Option<u64>) {
    if !trace_active() {
        return;
    }
    let mut event = Event::new("spans");
    if let Some(epoch) = epoch {
        event = event.field_u64("epoch", epoch);
    }
    let snap = span_snapshot();
    let pairs = snap
        .spans
        .iter()
        .map(|(name, stat)| {
            let fields = vec![
                ("count".to_owned(), Value::Num(Number::U(stat.count))),
                ("seconds".to_owned(), Value::Num(Number::F(stat.seconds))),
            ];
            (name.clone(), Value::Object(fields))
        })
        .collect();
    event.field_value("spans", Value::Object(pairs)).emit_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_time() {
        let _guard = crate::test_lock();
        reset_spans();
        for _ in 0..3 {
            let _span = crate::span!("test_phase_a");
            std::hint::black_box(0);
        }
        let snap = span_snapshot();
        let stat = snap.get("test_phase_a").expect("span recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.seconds >= 0.0);
        reset_spans();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        reset_spans();
        set_spans_enabled(false);
        {
            let _span = crate::span!("test_phase_off");
        }
        assert!(span_snapshot().get("test_phase_off").is_none());
        set_spans_enabled(true);
        reset_spans();
    }

    #[test]
    fn diff_isolates_new_completions() {
        let _guard = crate::test_lock();
        reset_spans();
        {
            let _a = crate::span!("test_diff_a");
        }
        let before = span_snapshot();
        {
            let _a = crate::span!("test_diff_a");
        }
        {
            let _b = crate::span!("test_diff_b");
        }
        let delta = span_snapshot().diff(&before);
        assert_eq!(delta.get("test_diff_a").unwrap().count, 1);
        assert_eq!(delta.get("test_diff_b").unwrap().count, 1);
        // Unchanged spans are dropped from the diff.
        let empty = span_snapshot().diff(&span_snapshot());
        assert!(empty.spans.is_empty());
        reset_spans();
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut spans = BTreeMap::new();
        spans.insert("phase".to_owned(), SpanStat { count: 2, seconds: 0.5 });
        let snap = SpanSnapshot { spans };
        let json = serde_json::to_string(&snap).unwrap();
        let back: SpanSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
