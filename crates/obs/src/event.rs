//! JSONL event sinks: one JSON object per line, serde-shim serialized.
//!
//! Two global sinks exist, mapped onto the CLI's `--metrics-out` and
//! `--trace-out` flags. Writers are unbuffered on purpose: every event
//! is one `write` of a complete line, so a crash mid-run loses at most
//! the in-flight event and concurrent emitters never interleave bytes
//! within a line (each write happens under the sink mutex).
//!
//! Every event round-trips through the serde shims: a written line,
//! re-parsed with [`serde_json::parse_value`] and re-serialized with
//! [`serde_json::to_string`], is byte-identical. `dekg obslint` checks
//! exactly this on real run output.

use serde::{Number, Value};
use std::fs::File;
use std::io::Write;
use std::sync::Mutex;

static METRICS_SINK: Mutex<Option<File>> = Mutex::new(None);
static TRACE_SINK: Mutex<Option<File>> = Mutex::new(None);

fn lock(sink: &'static Mutex<Option<File>>) -> std::sync::MutexGuard<'static, Option<File>> {
    // A panic while holding the lock poisons it; the sink itself is
    // still sound (whole lines only), so keep writing.
    sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Opens (truncating) the metrics JSONL sink at `path`.
///
/// # Errors
/// When the file cannot be created.
pub fn set_metrics_path(path: &str) -> std::io::Result<()> {
    *lock(&METRICS_SINK) = Some(File::create(path)?);
    Ok(())
}

/// Opens (truncating) the trace JSONL sink at `path`.
///
/// # Errors
/// When the file cannot be created.
pub fn set_trace_path(path: &str) -> std::io::Result<()> {
    *lock(&TRACE_SINK) = Some(File::create(path)?);
    Ok(())
}

/// Detaches both sinks (files are flushed and closed). Subsequent
/// events are dropped until a sink is configured again.
pub fn clear_sinks() {
    flush_sinks();
    *lock(&METRICS_SINK) = None;
    *lock(&TRACE_SINK) = None;
}

/// Flushes both sinks' OS buffers.
pub fn flush_sinks() {
    for sink in [&METRICS_SINK, &TRACE_SINK] {
        if let Some(f) = lock(sink).as_mut() {
            let _ = f.flush();
        }
    }
}

/// True when a metrics sink is configured — guard event construction
/// with this so disabled runs skip the formatting work entirely.
pub fn metrics_active() -> bool {
    lock(&METRICS_SINK).is_some()
}

/// True when a trace sink is configured.
pub fn trace_active() -> bool {
    lock(&TRACE_SINK).is_some()
}

/// Builder for one JSONL event.
///
/// Every event is a JSON object whose first key is `"event"` — the
/// event kind (`train_step`, `epoch`, `metrics`, `spans`, `log`, …).
/// Field order is preserved (the serde shim keeps object insertion
/// order), so emitted lines are stable and diffable.
#[derive(Debug)]
pub struct Event {
    pairs: Vec<(String, Value)>,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &str) -> Self {
        Event { pairs: vec![("event".to_owned(), Value::Str(kind.to_owned()))] }
    }

    /// Adds an unsigned-integer field.
    #[must_use]
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.pairs.push((key.to_owned(), Value::Num(Number::U(v))));
        self
    }

    /// Adds a float field. Non-finite values serialize as JSON `null`
    /// (matching serde_json); emit finite values only where the line is
    /// expected to round-trip.
    #[must_use]
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.pairs.push((key.to_owned(), Value::Num(Number::F(v))));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.pairs.push((key.to_owned(), Value::Str(v.to_owned())));
        self
    }

    /// Adds a pre-built value field (nested objects/arrays).
    #[must_use]
    pub fn field_value(mut self, key: &str, v: Value) -> Self {
        self.pairs.push((key.to_owned(), v));
        self
    }

    /// The event as a single compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let v = Value::Object(self.pairs.clone());
        serde_json::to_string(&v).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Writes the event to the metrics sink (dropped when none).
    pub fn emit_metrics(self) {
        emit(&METRICS_SINK, &self);
    }

    /// Writes the event to the trace sink (dropped when none).
    pub fn emit_trace(self) {
        emit(&TRACE_SINK, &self);
    }
}

fn emit(sink: &'static Mutex<Option<File>>, event: &Event) {
    let mut guard = lock(sink);
    if let Some(f) = guard.as_mut() {
        let mut line = event.to_json();
        line.push('\n');
        // A failed sink write must not take down a training run; the
        // `obslint` smoke catches truncated output downstream.
        let _ = f.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let e = Event::new("train_step")
            .field_u64("step", 3)
            .field_f64("loss", 1.5)
            .field_str("model", "DEKG-ILP");
        assert_eq!(e.to_json(), r#"{"event":"train_step","step":3,"loss":1.5,"model":"DEKG-ILP"}"#);
    }

    #[test]
    fn event_round_trips_through_serde_shim() {
        let line = Event::new("epoch").field_u64("epoch", 0).field_f64("mean_loss", 0.25).to_json();
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(serde_json::to_string(&v).unwrap(), line);
    }

    #[test]
    fn floats_round_trip_including_integral_values() {
        // 2.0 must re-parse as a float and re-serialize identically.
        let line = Event::new("x").field_f64("v", 2.0).to_json();
        assert!(line.contains("2.0"));
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(serde_json::to_string(&v).unwrap(), line);
    }

    #[test]
    fn emit_without_sink_is_dropped() {
        // No sink configured in unit tests: must not panic.
        Event::new("noop").emit_metrics();
        Event::new("noop").emit_trace();
    }
}
