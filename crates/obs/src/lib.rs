#![warn(missing_docs)]

//! # dekg-obs
//!
//! First-party observability for the DEKG-ILP reproduction — the
//! offline counterpart of the WANDB-style run logging the reference
//! implementations lean on. Three cooperating facilities share one
//! process-global configuration:
//!
//! * **Structured, leveled logging** — [`log_debug!`], [`log_info!`]
//!   and [`log_warn!`] write human-readable lines to stderr and, when a
//!   trace sink is configured, mirror each record as a JSON event.
//! * **A metrics registry** — named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and fixed-bucket [`metrics::Histogram`]s with
//!   a Prometheus-style text exposition
//!   ([`metrics::Registry::render_prometheus`]) and a serializable
//!   [`metrics::MetricsSnapshot`].
//! * **Span timers** — [`span!`] scopes that accumulate per-phase
//!   wall-clock totals (`extract_subgraph`, `score_batch`, …), cheap
//!   enough for hot paths and reducible to a single atomic load when
//!   disabled via [`set_spans_enabled`].
//!
//! Events flow to two optional JSONL sinks (one JSON object per line):
//! the **metrics sink** (`--metrics-out`) receives per-step training
//! events and the final registry snapshot; the **trace sink**
//! (`--trace-out`) receives log records and span-timing events.
//!
//! ## Determinism contract
//!
//! The repo's bitwise-determinism discipline extends to metrics: every
//! metric *value* is a pure function of the run's inputs and seeds,
//! independent of the worker thread count. The rules that make this
//! hold (see DESIGN.md "Observability"):
//!
//! * counters and histogram buckets are additive `u64`s — parallel
//!   increments commute, so totals are thread-count-invariant;
//! * gauges are only ever set from serial sections (the training loop),
//!   never from inside a parallel fan-out;
//! * wall-clock quantities are *excluded* from the contract and
//!   lexically marked: any event field or struct field whose name
//!   contains `seconds` is measurement, not output.
//!
//! ## Quickstart
//!
//! ```
//! use dekg_obs::{log_info, metrics, span};
//!
//! // Counters/histograms: register once (cheap), bump from anywhere.
//! let extractions = metrics::global().counter("demo_extractions_total");
//! extractions.inc();
//!
//! // Span scopes: bind the guard — drop records the elapsed time.
//! {
//!     let _span = span!("demo_phase");
//!     // ... timed work ...
//! }
//! assert!(dekg_obs::span_snapshot().get("demo_phase").is_some());
//!
//! // Leveled logging (stderr + optional trace sink).
//! log_info!("demo ran {} extraction(s)", extractions.get());
//! ```

pub mod chrome;
pub mod event;
pub mod log;
pub mod metrics;
pub mod span;

pub use chrome::{chrome_active, set_chrome_trace_path, write_chrome_trace};
pub use event::{
    flush_sinks, metrics_active, set_metrics_path, set_trace_path, trace_active, Event,
};
pub use log::{set_level, Level};
pub use metrics::MetricsSnapshot;
pub use span::{
    current_trace, new_trace_id, set_current_trace, set_spans_enabled, set_tracing_enabled,
    span_snapshot, spans_enabled, tracing_enabled, SpanSnapshot, SpanStat, SpanTimer,
};

/// One-call configuration for a CLI run, mapped from the
/// `--log-level`, `--metrics-out` and `--trace-out` flags.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Minimum level for log records (`None` keeps the current level).
    pub level: Option<Level>,
    /// JSONL metrics sink path (`--metrics-out`).
    pub metrics_path: Option<String>,
    /// JSONL trace sink path (`--trace-out`).
    pub trace_path: Option<String>,
    /// Chrome trace-event JSON output path (`--chrome-trace`). Setting
    /// it arms hierarchical span ids; [`finish`] writes the file.
    pub chrome_trace_path: Option<String>,
}

/// Applies an [`ObsConfig`]: sets the log level and opens the sinks.
///
/// # Errors
/// When a sink file cannot be created.
pub fn init(cfg: &ObsConfig) -> std::io::Result<()> {
    if let Some(level) = cfg.level {
        set_level(level);
    }
    if let Some(path) = &cfg.metrics_path {
        set_metrics_path(path)?;
    }
    if let Some(path) = &cfg.trace_path {
        set_trace_path(path)?;
    }
    if let Some(path) = &cfg.chrome_trace_path {
        set_chrome_trace_path(path);
    }
    Ok(())
}

/// Zeroes every registered metric in place (handles stay valid) and
/// clears the span table. Test/harness support: a fresh baseline
/// without tearing down call-site handle caches.
pub fn reset() {
    metrics::global().reset();
    span::reset_spans();
}

/// A snapshot of the global metrics registry.
pub fn metrics_snapshot() -> MetricsSnapshot {
    metrics::global().snapshot()
}

/// Flushes end-of-run summaries into the configured sinks:
///
/// * metrics sink — a `"metrics"` event carrying the full registry
///   snapshot (counters, gauges, histogram buckets);
/// * trace sink — a `"spans"` event with the accumulated per-phase
///   totals.
///
/// Idempotent; a no-op when no sink is configured.
pub fn finish() {
    if metrics_active() {
        let snap = metrics::global().snapshot();
        Event::new("metrics")
            .field_value("snapshot", serde::Serialize::to_value(&snap))
            .emit_metrics();
    }
    if trace_active() {
        span::emit_span_event(None);
    }
    write_chrome_trace();
    flush_sinks();
}

/// Serializes unit tests that mutate process-global state (the level
/// threshold, sinks). `cargo test` runs tests in parallel threads;
/// anything touching a global must hold this.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_sets_level() {
        let _guard = crate::test_lock();
        // Restore afterwards so other tests in this binary keep the
        // default threshold.
        let prev = log::level();
        init(&ObsConfig { level: Some(Level::Warn), ..Default::default() }).unwrap();
        assert_eq!(log::level(), Level::Warn);
        set_level(prev);
    }

    #[test]
    fn finish_without_sinks_is_a_noop() {
        finish();
    }
}
