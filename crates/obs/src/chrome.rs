//! Chrome trace-event export for hierarchical spans.
//!
//! When a Chrome trace path is configured (`--chrome-trace out.json`),
//! every closing [`crate::span!`] scope appends one complete
//! (`"ph": "X"`) trace event — name, per-thread track, microsecond
//! start/duration relative to a process epoch, and the span's
//! trace/span/parent ids in `args` — to an in-memory buffer;
//! [`crate::finish`] writes the buffer as a single JSON array loadable
//! in Perfetto or `chrome://tracing`.
//!
//! Events are appended *at close time*, so within one `tid` the file
//! order is the close order and end timestamps (`ts + dur`) are
//! non-decreasing — `dekg obslint --chrome` verifies exactly this,
//! plus parent/child containment. The buffer is bounded
//! (`MAX_EVENTS`); overflow is counted, reported in a trailing
//! metadata event, and warned about — never silently dropped.

use serde::{Number, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One buffered complete event (`ph: "X"`).
struct ChromeEvent {
    name: &'static str,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
}

/// Hard cap on buffered events: a 2-hop R-GCN profile run emits a few
/// thousand spans; this bounds a runaway daemon at roughly 30 MB of
/// buffer instead of unbounded growth.
const MAX_EVENTS: usize = 262_144;

static PATH: Mutex<Option<String>> = Mutex::new(None);
static BUFFER: Mutex<Vec<ChromeEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// The process time origin all `ts` values are relative to. Pinned when
/// the chrome path is configured so spans that begin afterwards always
/// have non-negative timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configures the Chrome trace output path and arms hierarchical span
/// tracking (see [`crate::span::set_tracing_enabled`]). The file itself
/// is written by [`write_chrome_trace`] (called from [`crate::finish`]).
pub fn set_chrome_trace_path(path: &str) {
    epoch();
    *lock(&PATH) = Some(path.to_owned());
    lock(&BUFFER).clear();
    DROPPED.store(0, Ordering::Relaxed);
    crate::span::set_tracing_enabled(true);
}

/// True when a Chrome trace path is configured.
pub fn chrome_active() -> bool {
    lock(&PATH).is_some()
}

/// Appends one complete event for a just-closed span. `start` is the
/// span's entry instant; duration is measured by the caller.
pub(crate) fn push_event(
    name: &'static str,
    tid: u64,
    start: Instant,
    dur_seconds: f64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
) {
    if !chrome_active() {
        return;
    }
    let ts_us = start.saturating_duration_since(epoch()).as_secs_f64() * 1e6;
    let mut buf = lock(&BUFFER);
    if buf.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.push(ChromeEvent {
        name,
        tid,
        ts_us,
        dur_us: dur_seconds * 1e6,
        trace_id,
        span_id,
        parent_id,
    });
}

fn event_value(e: &ChromeEvent) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::Str(e.name.to_owned())),
        ("ph".to_owned(), Value::Str("X".to_owned())),
        ("ts".to_owned(), Value::Num(Number::F(e.ts_us))),
        ("dur".to_owned(), Value::Num(Number::F(e.dur_us))),
        ("pid".to_owned(), Value::Num(Number::U(1))),
        ("tid".to_owned(), Value::Num(Number::U(e.tid))),
        (
            "args".to_owned(),
            Value::Object(vec![
                ("trace_id".to_owned(), Value::Num(Number::U(e.trace_id))),
                ("span_id".to_owned(), Value::Num(Number::U(e.span_id))),
                ("parent_id".to_owned(), Value::Num(Number::U(e.parent_id))),
            ]),
        ),
    ])
}

/// Writes the buffered events to the configured path as one JSON array
/// (the Chrome trace-event format), draining the buffer. A trailing
/// `M`-phase metadata event reports how many events the bounded buffer
/// dropped; a nonzero count is also logged as a warning. No-op without
/// a configured path.
pub fn write_chrome_trace() {
    let Some(path) = lock(&PATH).clone() else { return };
    let events: Vec<ChromeEvent> = std::mem::take(&mut *lock(&BUFFER));
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    if dropped > 0 {
        crate::log_warn!("chrome trace buffer overflowed: {dropped} span(s) not exported");
    }
    let mut values: Vec<Value> = events.iter().map(event_value).collect();
    values.push(Value::Object(vec![
        ("name".to_owned(), Value::Str("dekg_trace_meta".to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::Num(Number::U(1))),
        (
            "args".to_owned(),
            Value::Object(vec![("dropped_events".to_owned(), Value::Num(Number::U(dropped)))]),
        ),
    ]));
    let text =
        serde_json::to_string_pretty(&Value::Array(values)).unwrap_or_else(|_| "[]".to_owned());
    if let Err(e) = std::fs::write(&path, text) {
        crate::log_warn!("could not write chrome trace {path}: {e}");
    }
}

/// Detaches the chrome sink and clears the buffer (test/harness
/// support; does not touch the tracing-enabled flag).
pub fn clear_chrome_trace() {
    *lock(&PATH) = None;
    lock(&BUFFER).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_round_trips() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join(format!("dekg-chrome-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        set_chrome_trace_path(path.to_str().unwrap());
        {
            let _outer = crate::span!("chrome_test_outer");
            let _inner = crate::span!("chrome_test_inner");
        }
        write_chrome_trace();
        crate::span::set_tracing_enabled(false);
        clear_chrome_trace();

        let text = std::fs::read_to_string(&path).unwrap();
        let Value::Array(events) = serde_json::parse_value(&text).unwrap() else {
            panic!("chrome trace is not a JSON array");
        };
        // Two complete events plus the metadata trailer.
        assert_eq!(events.len(), 3, "events: {text}");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Value::Object(pairs) => pairs
                    .iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| if let Value::Str(s) = v { Some(s.as_str()) } else { None }),
                _ => None,
            })
            .collect();
        // Inner closes first, so it precedes outer in file order.
        assert_eq!(names, ["chrome_test_inner", "chrome_test_outer", "dekg_trace_meta"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
