//! Leveled structured logging: a global subscriber writing
//! human-readable lines to stderr and JSON records to the trace sink.
//!
//! The macros check the level *before* formatting, so a suppressed
//! record costs one relaxed atomic load — cheap enough to leave
//! `log_debug!` calls in hot paths.

use crate::event::{trace_active, Event};
use std::sync::atomic::{AtomicU8, Ordering};

/// Log-record severity, ordered `Debug < Info < Warn < Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Per-step diagnostics; suppressed by default.
    Debug = 0,
    /// Run progress (the default threshold).
    Info = 1,
    /// Findings that deserve attention but do not abort the run.
    Warn = 2,
    /// Suppress everything.
    Off = 3,
}

impl Level {
    /// The level's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Off => "off",
        }
    }

    /// Parses a `--log-level` value.
    ///
    /// # Errors
    /// On anything other than `debug|info|warn|off`.
    pub fn parse(s: &str) -> Result<Level, String> {
        match s {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "off" => Ok(Level::Off),
            other => Err(format!("unknown log level {other:?} (debug|info|warn|off)")),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global minimum level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global minimum level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        _ => Level::Off,
    }
}

/// True when records at `level` pass the global threshold. The macros
/// call this before formatting; direct use is fine for guarding more
/// expensive diagnostics.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level as u8 >= LEVEL.load(Ordering::Relaxed)
}

/// Emits one record: `[level target] message` on stderr, plus a
/// `"log"` JSON event on the trace sink when one is configured.
///
/// Prefer the [`crate::log_debug!`] / [`crate::log_info!`] /
/// [`crate::log_warn!`] macros, which capture the calling module as the
/// target and skip formatting below the threshold.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let message = args.to_string();
    // lint: print-ok — this IS the stderr sink every library log macro routes through
    eprintln!("[{level} {target}] {message}");
    if trace_active() {
        Event::new("log")
            .field_str("level", level.as_str())
            .field_str("target", target)
            .field_str("message", &message)
            .emit_trace();
    }
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parse() {
        assert!(
            Level::Debug < Level::Info && Level::Info < Level::Warn && Level::Warn < Level::Off
        );
        assert_eq!(Level::parse("debug").unwrap(), Level::Debug);
        assert_eq!(Level::parse("off").unwrap(), Level::Off);
        assert!(Level::parse("verbose").is_err());
    }

    #[test]
    fn threshold_filters() {
        let _guard = crate::test_lock();
        let prev = level();
        set_level(Level::Warn);
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Info));
        assert!(enabled(Level::Warn));
        set_level(Level::Off);
        assert!(!enabled(Level::Warn));
        set_level(prev);
    }

    #[test]
    fn macros_expand_and_run() {
        let _guard = crate::test_lock();
        let prev = level();
        set_level(Level::Off);
        // Suppressed: must not format (and must still compile).
        log_debug!("dropped {}", 1);
        log_info!("dropped {}", 2);
        log_warn!("dropped {}", 3);
        set_level(prev);
    }
}
