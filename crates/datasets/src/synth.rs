//! Deterministic synthetic DEKG generation.
//!
//! ## Generative model
//!
//! Real KGs exhibit two regularities the evaluated models rely on:
//!
//! 1. **Relation/type consistency** — a relation connects entities of
//!    particular semantic types (`employ` links organisations to
//!    people). CLRM's premise is precisely that an entity's associated
//!    relations reveal its type.
//! 2. **Skewed relation frequencies** — a few relations dominate.
//!
//! The generator samples a latent type `τ(e)` for every entity and a
//! signature `(σ_h(r), σ_t(r))` for every relation, then draws triples
//! by Zipf-weighted relation choice with endpoints from the matching
//! type buckets (plus a small noise fraction). `G` and `G'` share the
//! relation signatures and the type space but have disjoint entities
//! and **no connecting edges** — the DEKG setting. Held-out enclosing
//! and bridging links are drawn from the *same* signature model, so
//! they are statistically "real" links of the underlying world, exactly
//! like the paper's links extracted from the raw KGs.
//!
//! Everything is driven by one seed; identical configs yield identical
//! datasets on every platform.

use crate::profiles::{DatasetProfile, RawKg, SplitKind};
use crate::splits::DekgDataset;
use dekg_kg::{EntityId, RelationId, Triple, TripleStore, Vocab};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// A minimal deterministic dataset for correctness tooling and tests:
/// a WN18RR-eq profile scaled to ~1.5%, with 10 validation, 10
/// enclosing-test, and 10 bridging-test links. Small enough for
/// per-batch gradient spot checks (`train --gradcheck-every`) and the
/// end-to-end loss gradchecks, but still exercising both graphs and
/// every link class.
pub fn tiny_fixture(seed: u64) -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.015);
    let mut cfg = SynthConfig::for_profile(profile, seed);
    cfg.num_valid = 10;
    cfg.num_test_enclosing = 10;
    cfg.num_test_bridging = 10;
    generate(&cfg)
}

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Target statistics (usually a [`DatasetProfile::table2`] row,
    /// possibly [scaled](DatasetProfile::scaled)).
    pub profile: DatasetProfile,
    /// Number of latent entity types.
    pub num_types: usize,
    /// Zipf exponent for relation frequencies.
    pub zipf_exponent: f64,
    /// Fraction of noisy (signature-violating) triples.
    pub noise: f64,
    /// Fraction of within-graph triples drawn by **triadic closure**
    /// (connecting 2-hop-reachable endpoint pairs) instead of pure type
    /// sampling. Real KGs are heavily closed; this is what gives path-
    /// based methods (GraIL, TACT, RuleN) their signal on enclosing
    /// links. Bridging links never use closure — no cross-graph paths
    /// exist to close.
    pub closure_fraction: f64,
    /// Validation links to hold out inside `G`.
    pub num_valid: usize,
    /// Enclosing test links to generate.
    pub num_test_enclosing: usize,
    /// Bridging test links to generate.
    pub num_test_bridging: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Sensible defaults for a profile: type count scales with the
    /// relation count; test pools sized from `|T'|` so every mix ratio
    /// can be satisfied.
    pub fn for_profile(profile: DatasetProfile, seed: u64) -> Self {
        let num_types = (profile.relations_g / 4).clamp(4, 32);
        let test_pool = (profile.triples_gp / 5).max(30);
        SynthConfig {
            profile,
            num_types,
            zipf_exponent: 0.8,
            noise: 0.05,
            closure_fraction: 0.45,
            num_valid: (profile.triples_g / 20).max(20),
            num_test_enclosing: test_pool,
            num_test_bridging: test_pool,
            seed,
        }
    }
}

/// The latent world shared by `G` and `G'`.
struct World {
    /// `τ(e)` per entity id.
    types: Vec<usize>,
    /// `(σ_h, σ_t)` per relation.
    signatures: Vec<(usize, usize)>,
    /// Cumulative Zipf weights for relation sampling.
    rel_cdf: Vec<f64>,
    num_types: usize,
    noise: f64,
}

impl World {
    fn sample_relation(&self, rng: &mut impl Rng, limit: usize) -> RelationId {
        // Restrict to the first `limit` (most frequent) relations.
        let cap = self.rel_cdf[limit - 1];
        let x = rng.gen::<f64>() * cap;
        let idx = self.rel_cdf[..limit].partition_point(|&c| c < x);
        RelationId(idx.min(limit - 1) as u32)
    }
}

/// Type-bucketed view over a contiguous entity-id range.
struct Buckets {
    by_type: Vec<Vec<EntityId>>,
    all: Vec<EntityId>,
}

impl Buckets {
    fn new(range: std::ops::Range<usize>, world: &World) -> Self {
        let mut by_type = vec![Vec::new(); world.num_types];
        let mut all = Vec::with_capacity(range.len());
        for i in range {
            let e = EntityId(i as u32);
            by_type[world.types[i]].push(e);
            all.push(e);
        }
        Buckets { by_type, all }
    }

    /// An entity of type `ty`, falling back to any entity when the
    /// bucket is empty (tiny scaled graphs).
    fn pick(&self, ty: usize, rng: &mut impl Rng) -> EntityId {
        let bucket = &self.by_type[ty];
        if bucket.is_empty() {
            *self.all.choose(rng).expect("entity range must be non-empty")
        } else {
            *bucket.choose(rng).expect("non-empty bucket")
        }
    }
}

/// Draws one signature-consistent triple with endpoints from the given
/// bucket sets (which may differ — that is how bridging links are made).
fn draw_triple(
    world: &World,
    head_side: &Buckets,
    tail_side: &Buckets,
    rel_limit: usize,
    rng: &mut impl Rng,
) -> Triple {
    let r = world.sample_relation(rng, rel_limit);
    let (mut ht, mut tt) = world.signatures[r.index()];
    if rng.gen::<f64>() < world.noise {
        ht = rng.gen_range(0..world.num_types);
        tt = rng.gen_range(0..world.num_types);
    }
    let h = head_side.pick(ht, rng);
    let t = tail_side.pick(tt, rng);
    Triple::new(h, r, t)
}

/// Incremental view of one graph's triples used for closure sampling.
///
/// A closure draw picks a random observed 2-path `x — z — y` and
/// proposes a triple `(x, r, y)` with `r` chosen among relations whose
/// signature matches `(τ(x), τ(y))` — creating exactly the kind of
/// `r(x,y) ← r₁(x,z) ∧ r₂(z,y)` regularities that subgraph and rule
/// methods exploit in real KGs.
struct ClosureState {
    triples: Vec<Triple>,
    touch: HashMap<EntityId, Vec<u32>>,
    /// Relations (within the graph's limit) per `(head_type, tail_type)`.
    sig_to_rels: HashMap<(usize, usize), Vec<RelationId>>,
}

impl ClosureState {
    fn new(world: &World, rel_limit: usize) -> Self {
        let mut sig_to_rels: HashMap<(usize, usize), Vec<RelationId>> = HashMap::new();
        for (ri, &sig) in world.signatures[..rel_limit].iter().enumerate() {
            sig_to_rels.entry(sig).or_default().push(RelationId(ri as u32));
        }
        ClosureState { triples: Vec::new(), touch: HashMap::new(), sig_to_rels }
    }

    /// Registers an accepted graph triple as future path evidence.
    fn record(&mut self, t: Triple) {
        let idx = self.triples.len() as u32;
        self.triples.push(t);
        self.touch.entry(t.head).or_default().push(idx);
        if !t.is_loop() {
            self.touch.entry(t.tail).or_default().push(idx);
        }
    }

    /// Attempts one closure draw; `None` when no usable 2-path exists.
    fn draw(&self, world: &World, rel_limit: usize, rng: &mut impl Rng) -> Option<Triple> {
        if self.triples.is_empty() {
            return None;
        }
        let t1 = self.triples[rng.gen_range(0..self.triples.len())];
        // Pick the pivot z uniformly among t1's endpoints.
        let (x, z) = if rng.gen::<bool>() { (t1.head, t1.tail) } else { (t1.tail, t1.head) };
        let around_z = self.touch.get(&z)?;
        let t2 = self.triples[*around_z.choose(rng)? as usize];
        if !t2.touches(z) || t2 == t1 {
            return None;
        }
        let y = t2.other_end(z);
        if y == x {
            return None;
        }
        let sig = (world.types[x.index()], world.types[y.index()]);
        let r = match self.sig_to_rels.get(&sig).and_then(|rs| rs.choose(rng)) {
            Some(&r) => r,
            // No signature-compatible relation: keep the path pattern
            // anyway with a frequency-sampled relation.
            None => world.sample_relation(rng, rel_limit),
        };
        Some(Triple::new(x, r, y))
    }
}

/// Fills `out` with `budget` fresh triples not present in `seen`,
/// giving up gracefully when the space is exhausted.
///
/// When `closure` is provided, a `closure_fraction` share of draws use
/// triadic closure over the recorded graph; `record_into` additionally
/// registers accepted triples as future path evidence (graph
/// construction does this, held-out sampling does not).
#[allow(clippy::too_many_arguments)]
fn fill_fresh(
    world: &World,
    head_side: &Buckets,
    tail_side: &Buckets,
    rel_limit: usize,
    budget: usize,
    seen: &mut HashSet<Triple>,
    closure: Option<&mut ClosureState>,
    closure_fraction: f64,
    record_into: bool,
    rng: &mut impl Rng,
    out: &mut Vec<Triple>,
) {
    let max_attempts = budget.saturating_mul(200).max(10_000);
    let mut attempts = 0;
    let mut closure = closure;
    while out.len() < budget && attempts < max_attempts {
        attempts += 1;
        let proposal = match &closure {
            Some(state) if rng.gen::<f64>() < closure_fraction => state.draw(world, rel_limit, rng),
            _ => None,
        };
        let t =
            proposal.unwrap_or_else(|| draw_triple(world, head_side, tail_side, rel_limit, rng));
        if t.is_loop() {
            continue;
        }
        if seen.insert(t) {
            out.push(t);
            if record_into {
                if let Some(state) = closure.as_deref_mut() {
                    state.record(t);
                }
            }
        }
    }
}

/// Ensures every entity in `range` participates in at least one triple
/// of `store`, adding signature-consistent edges where needed.
fn connect_isolated(
    world: &World,
    buckets: &Buckets,
    range: std::ops::Range<usize>,
    rel_limit: usize,
    store: &mut TripleStore,
    seen: &mut HashSet<Triple>,
    rng: &mut impl Rng,
) {
    let covered = store.entities();
    for i in range {
        let e = EntityId(i as u32);
        if covered.contains(&e) || store.degree(e) > 0 {
            continue;
        }
        // Find a relation whose head signature matches e's type, else
        // one matching as tail, else any relation (noise edge).
        let ty = world.types[i];
        let mut placed = false;
        for (ri, &(ht, tt)) in world.signatures[..rel_limit].iter().enumerate() {
            let r = RelationId(ri as u32);
            if ht == ty {
                let t = buckets.pick(tt, rng);
                if t != e {
                    let tr = Triple::new(e, r, t);
                    if seen.insert(tr) {
                        store.insert(tr);
                        placed = true;
                        break;
                    }
                }
            } else if tt == ty {
                let h = buckets.pick(ht, rng);
                if h != e {
                    let tr = Triple::new(h, r, e);
                    if seen.insert(tr) {
                        store.insert(tr);
                        placed = true;
                        break;
                    }
                }
            }
        }
        if !placed {
            // Last resort: connect to a random entity over relation 0.
            for _ in 0..50 {
                let other = *buckets.all.choose(rng).expect("non-empty");
                if other == e {
                    continue;
                }
                let tr = Triple::new(e, RelationId(0), other);
                if seen.insert(tr) {
                    store.insert(tr);
                    break;
                }
            }
        }
    }
}

/// Generates a complete [`DekgDataset`] from a config.
///
/// The result always passes [`DekgDataset::validate`].
///
/// ```
/// use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
///
/// let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.03);
/// let data = generate(&SynthConfig::for_profile(profile, 42));
/// assert!(!data.test_bridging.is_empty());
/// // Same seed → identical dataset.
/// let again = generate(&SynthConfig::for_profile(profile, 42));
/// assert_eq!(data.original.triples(), again.original.triples());
/// ```
pub fn generate(cfg: &SynthConfig) -> DekgDataset {
    let p = &cfg.profile;
    assert!(p.relations_gp <= p.relations_g, "G' relations must be shared with G");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // --- vocabulary: G entities first, then G' entities ---
    let mut vocab = Vocab::new();
    for i in 0..p.entities_g {
        vocab.intern_entity(&format!("g_e{i}"));
    }
    for i in 0..p.entities_gp {
        vocab.intern_entity(&format!("p_e{i}"));
    }
    for k in 0..p.relations_g {
        vocab.intern_relation(&format!("rel{k}"));
    }

    // --- latent world ---
    let total_entities = p.entities_g + p.entities_gp;
    let types: Vec<usize> = (0..total_entities).map(|_| rng.gen_range(0..cfg.num_types)).collect();
    let signatures: Vec<(usize, usize)> = (0..p.relations_g)
        .map(|_| (rng.gen_range(0..cfg.num_types), rng.gen_range(0..cfg.num_types)))
        .collect();
    let mut rel_cdf = Vec::with_capacity(p.relations_g);
    let mut acc = 0.0;
    for r in 0..p.relations_g {
        acc += 1.0 / ((r + 1) as f64).powf(cfg.zipf_exponent);
        rel_cdf.push(acc);
    }
    let world = World { types, signatures, rel_cdf, num_types: cfg.num_types, noise: cfg.noise };

    let g_buckets = Buckets::new(0..p.entities_g, &world);
    let gp_buckets = Buckets::new(p.entities_g..total_entities, &world);

    // --- original KG G ---
    let mut seen = HashSet::new();
    let mut g_closure = ClosureState::new(&world, p.relations_g);
    let mut g_triples = Vec::new();
    fill_fresh(
        &world,
        &g_buckets,
        &g_buckets,
        p.relations_g,
        p.triples_g,
        &mut seen,
        Some(&mut g_closure),
        cfg.closure_fraction,
        true,
        &mut rng,
        &mut g_triples,
    );
    let mut original = TripleStore::from_triples(g_triples);
    connect_isolated(
        &world,
        &g_buckets,
        0..p.entities_g,
        p.relations_g,
        &mut original,
        &mut seen,
        &mut rng,
    );

    // --- emerging KG G' (restricted to the most frequent relations) ---
    let mut gp_closure = ClosureState::new(&world, p.relations_gp);
    let mut gp_triples = Vec::new();
    fill_fresh(
        &world,
        &gp_buckets,
        &gp_buckets,
        p.relations_gp,
        p.triples_gp,
        &mut seen,
        Some(&mut gp_closure),
        cfg.closure_fraction,
        true,
        &mut rng,
        &mut gp_triples,
    );
    let mut emerging = TripleStore::from_triples(gp_triples);
    connect_isolated(
        &world,
        &gp_buckets,
        p.entities_g..total_entities,
        p.relations_gp,
        &mut emerging,
        &mut seen,
        &mut rng,
    );

    // --- held-out links (same generative mixture, never recorded) ---
    let mut valid = Vec::new();
    fill_fresh(
        &world,
        &g_buckets,
        &g_buckets,
        p.relations_g,
        cfg.num_valid,
        &mut seen,
        Some(&mut g_closure),
        cfg.closure_fraction,
        false,
        &mut rng,
        &mut valid,
    );
    let mut test_enclosing = Vec::new();
    fill_fresh(
        &world,
        &gp_buckets,
        &gp_buckets,
        p.relations_gp,
        cfg.num_test_enclosing,
        &mut seen,
        Some(&mut gp_closure),
        cfg.closure_fraction,
        false,
        &mut rng,
        &mut test_enclosing,
    );
    let mut test_bridging = Vec::new();
    {
        // Alternate the unseen endpoint between tail and head positions.
        let max_attempts = cfg.num_test_bridging * 200 + 10_000;
        let mut attempts = 0;
        while test_bridging.len() < cfg.num_test_bridging && attempts < max_attempts {
            attempts += 1;
            let forward = rng.gen::<bool>();
            let (hs, ts) =
                if forward { (&g_buckets, &gp_buckets) } else { (&gp_buckets, &g_buckets) };
            let t = draw_triple(&world, hs, ts, p.relations_gp, &mut rng);
            if seen.insert(t) {
                test_bridging.push(t);
            }
        }
    }

    let dataset = DekgDataset {
        name: p.name(),
        vocab,
        num_original_entities: p.entities_g,
        num_relations: p.relations_g,
        original,
        emerging,
        valid,
        test_enclosing,
        test_bridging,
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{RawKg, SplitKind};
    use dekg_kg::Adjacency;

    fn small_cfg(seed: u64) -> SynthConfig {
        let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.05);
        SynthConfig::for_profile(profile, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_cfg(7));
        let b = generate(&small_cfg(7));
        assert_eq!(a.original.triples(), b.original.triples());
        assert_eq!(a.test_bridging, b.test_bridging);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_cfg(1));
        let b = generate(&small_cfg(2));
        assert_ne!(a.original.triples(), b.original.triples());
    }

    #[test]
    fn triple_counts_near_targets() {
        let cfg = small_cfg(3);
        let d = generate(&cfg);
        let p = &cfg.profile;
        // connect_isolated may add a few; rejection may drop a few.
        let g_len = d.original.len();
        assert!(
            g_len as f64 >= p.triples_g as f64 * 0.9,
            "G too small: {g_len} vs target {}",
            p.triples_g
        );
        assert!(d.emerging.len() as f64 >= p.triples_gp as f64 * 0.9);
    }

    #[test]
    fn no_cross_edges_between_g_and_gp() {
        let d = generate(&small_cfg(4));
        d.validate(); // validate() already checks this; be explicit too:
        for t in d.emerging.triples() {
            assert!(!d.is_original(t.head) && !d.is_original(t.tail));
        }
    }

    #[test]
    fn no_isolated_entities() {
        let d = generate(&small_cfg(5));
        let adj_g = Adjacency::from_store(&d.original, d.num_entities());
        for i in 0..d.num_original_entities {
            assert!(adj_g.degree(EntityId(i as u32)) > 0, "G entity {i} is isolated");
        }
        let adj_gp = Adjacency::from_store(&d.emerging, d.num_entities());
        for i in d.num_original_entities..d.num_entities() {
            assert!(adj_gp.degree(EntityId(i as u32)) > 0, "G' entity {i} is isolated");
        }
    }

    #[test]
    fn test_links_are_fresh_and_classified() {
        let d = generate(&small_cfg(6));
        assert!(!d.test_enclosing.is_empty());
        assert!(!d.test_bridging.is_empty());
        for t in &d.test_enclosing {
            assert!(!d.emerging.contains(t));
            assert_eq!(d.classify(t).unwrap().name(), "enclosing");
        }
        for t in &d.test_bridging {
            assert!(!d.original.contains(t));
            assert_eq!(d.classify(t).unwrap().name(), "bridging");
        }
    }

    #[test]
    fn bridging_links_use_shared_relations() {
        let cfg = small_cfg(8);
        let d = generate(&cfg);
        let gp_rels = cfg.profile.relations_gp;
        for t in &d.test_bridging {
            assert!(t.rel.index() < gp_rels, "bridging link uses G-only relation");
        }
    }

    #[test]
    fn bridging_links_span_both_directions() {
        let d = generate(&small_cfg(9));
        let unseen_heads = d.test_bridging.iter().filter(|t| !d.is_original(t.head)).count();
        let unseen_tails = d.test_bridging.iter().filter(|t| !d.is_original(t.tail)).count();
        assert!(unseen_heads > 0, "no head-unseen bridging links");
        assert!(unseen_tails > 0, "no tail-unseen bridging links");
    }

    #[test]
    fn relation_frequencies_are_skewed() {
        let d = generate(&small_cfg(10));
        let mut counts = vec![0usize; d.num_relations];
        for t in d.original.triples() {
            counts[t.rel.index()] += 1;
        }
        // Zipf weighting: the most frequent relation should clearly beat
        // the median one.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(sorted[0] >= 2 * sorted[sorted.len() / 2].max(1));
    }

    /// Fraction of links whose endpoints are within `hops` of each
    /// other in `store` (ignoring the link itself).
    fn connected_fraction(
        links: &[Triple],
        store: &TripleStore,
        num_entities: usize,
        hops: u32,
    ) -> f64 {
        use dekg_kg::bfs::bounded_distances;
        let adj = Adjacency::from_store(store, num_entities);
        let hit = links
            .iter()
            .filter(|t| {
                let d = bounded_distances(&adj, t.head, hops, None);
                d[t.tail.index()] >= 0
            })
            .count();
        hit as f64 / links.len().max(1) as f64
    }

    #[test]
    fn closure_bias_creates_path_support_for_enclosing_links() {
        let mut with = small_cfg(11);
        with.closure_fraction = 0.6;
        let mut without = small_cfg(11);
        without.closure_fraction = 0.0;
        let d_with = generate(&with);
        let d_without = generate(&without);
        let f_with =
            connected_fraction(&d_with.test_enclosing, &d_with.emerging, d_with.num_entities(), 2);
        let f_without = connected_fraction(
            &d_without.test_enclosing,
            &d_without.emerging,
            d_without.num_entities(),
            2,
        );
        assert!(
            f_with > f_without,
            "closure bias must add 2-hop support: {f_with:.2} vs {f_without:.2}"
        );
        assert!(f_with > 0.5, "most closure-era enclosing links should be 2-hop connected");
    }

    #[test]
    fn bridging_links_never_have_observed_paths() {
        let d = generate(&small_cfg(12));
        let inference = {
            let mut s = d.original.clone();
            s.extend_from(&d.emerging);
            s
        };
        let f = connected_fraction(&d.test_bridging, &inference, d.num_entities(), 10);
        assert_eq!(f, 0.0, "no path may cross the G/G' boundary");
    }

    #[test]
    fn works_at_full_nell_eq_scale() {
        // NELL-995 EQ is the smallest full-size profile; generating it
        // end-to-end guards against pathological rejection loops.
        let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq);
        let d = generate(&SynthConfig::for_profile(profile, 0));
        assert!(d.original.len() as f64 >= profile.triples_g as f64 * 0.9);
        d.validate();
    }
}
