//! Corruption-based negative sampling (Eq. 12 of the paper).
//!
//! A negative triple replaces the head *or* the tail of a positive with
//! a random entity from a candidate range, rejecting corruptions that
//! happen to be known positives. The side to corrupt is a fair coin by
//! default, or the **Bernoulli** scheme of TransH (Wang et al., 2014)
//! when enabled: heads are corrupted with probability
//! `tph / (tph + hpt)` per relation, which produces fewer false
//! negatives on one-to-many/many-to-one relations.

use dekg_kg::{EntityId, RelationId, Triple, TripleStore};
use rand::Rng;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::OnceLock;

/// Counters for the rejection loop, registered once. Rejection and
/// fallback totals are pure functions of the per-slot RNG streams, so
/// they stay thread-count-invariant under [`NegativeSampler::corrupt_batch`].
struct SamplerObs {
    corruptions: dekg_obs::metrics::Counter,
    rejections: dekg_obs::metrics::Counter,
    fallbacks: dekg_obs::metrics::Counter,
}

fn sampler_obs() -> &'static SamplerObs {
    static OBS: OnceLock<SamplerObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = dekg_obs::metrics::global();
        SamplerObs {
            corruptions: reg.counter("dekg_neg_corruptions_total"),
            rejections: reg.counter("dekg_neg_rejections_total"),
            fallbacks: reg.counter("dekg_neg_fallbacks_total"),
        }
    })
}

/// A sampler bound to an entity range and a set of known positives.
#[derive(Debug, Clone)]
pub struct NegativeSampler<'a> {
    candidates: Range<u32>,
    known: Vec<&'a TripleStore>,
    /// Per-relation probability of corrupting the *head* side.
    head_prob: Option<HashMap<RelationId, f64>>,
}

impl<'a> NegativeSampler<'a> {
    /// Creates a sampler drawing replacement entities from `candidates`
    /// (a contiguous id range) and rejecting members of `known`.
    ///
    /// # Panics
    /// If the candidate range is empty.
    pub fn new(candidates: Range<u32>, known: Vec<&'a TripleStore>) -> Self {
        assert!(!candidates.is_empty(), "empty candidate range");
        NegativeSampler { candidates, known, head_prob: None }
    }

    /// Enables Bernoulli side selection with statistics from `store`
    /// (usually the training KG): for each relation, `tph` is the mean
    /// number of tails per head and `hpt` the mean heads per tail.
    pub fn with_bernoulli(mut self, store: &TripleStore) -> Self {
        let mut heads_of: HashMap<RelationId, HashMap<EntityId, u32>> = HashMap::new();
        let mut tails_of: HashMap<RelationId, HashMap<EntityId, u32>> = HashMap::new();
        for t in store.triples() {
            *heads_of.entry(t.rel).or_default().entry(t.head).or_insert(0) += 1;
            *tails_of.entry(t.rel).or_default().entry(t.tail).or_insert(0) += 1;
        }
        let mut prob = HashMap::new();
        for (&rel, heads) in &heads_of {
            let tails = &tails_of[&rel];
            // tph: average triples per distinct head; hpt analogously.
            let total: u32 = heads.values().sum();
            let tph = total as f64 / heads.len() as f64;
            let hpt = total as f64 / tails.len() as f64;
            prob.insert(rel, tph / (tph + hpt));
        }
        self.head_prob = Some(prob);
        self
    }

    fn is_known(&self, t: &Triple) -> bool {
        self.known.iter().any(|s| s.contains(t))
    }

    fn corrupt_head(&self, rel: RelationId, rng: &mut impl Rng) -> bool {
        match &self.head_prob {
            Some(prob) => rng.gen::<f64>() < prob.get(&rel).copied().unwrap_or(0.5),
            None => rng.gen::<bool>(),
        }
    }

    /// Corrupts `positive` into one negative; the side follows the
    /// configured scheme (fair coin or Bernoulli).
    ///
    /// Falls back to returning an un-rejected corruption after a bounded
    /// number of attempts (pathological graphs where almost everything
    /// is a positive).
    pub fn corrupt(&self, positive: &Triple, rng: &mut impl Rng) -> Triple {
        let obs = sampler_obs();
        obs.corruptions.inc();
        let mut last = *positive;
        for _ in 0..64 {
            let replacement = EntityId(rng.gen_range(self.candidates.clone()));
            let corrupted = if self.corrupt_head(positive.rel, rng) {
                Triple::new(replacement, positive.rel, positive.tail)
            } else {
                Triple::new(positive.head, positive.rel, replacement)
            };
            if corrupted == *positive {
                continue;
            }
            last = corrupted;
            if !self.is_known(&corrupted) {
                return corrupted;
            }
            obs.rejections.inc();
        }
        obs.fallbacks.inc();
        last
    }

    /// Draws `n` negatives for one positive.
    pub fn corrupt_n(&self, positive: &Triple, n: usize, rng: &mut impl Rng) -> Vec<Triple> {
        (0..n).map(|_| self.corrupt(positive, rng)).collect()
    }

    /// Draws `neg_per_pos` negatives for every positive, in parallel.
    ///
    /// Output slot `i * neg_per_pos + j` holds the `j`-th corruption of
    /// `positives[i]` and is sampled from its own ChaCha8 stream seeded
    /// with [`crate::seeding::split_seed`]`(master_seed, slot)`. The
    /// result is therefore a pure function of `(positives, master_seed)`
    /// — independent of thread count and chunking — and identical to
    /// running the corruptions in a serial loop.
    pub fn corrupt_batch(
        &self,
        positives: &[Triple],
        neg_per_pos: usize,
        master_seed: u64,
    ) -> Vec<Triple> {
        use rayon::prelude::*;
        (0..positives.len() * neg_per_pos)
            .into_par_iter()
            .map(|slot| {
                let mut rng = crate::seeding::item_rng(master_seed, slot as u64);
                self.corrupt(&positives[slot / neg_per_pos], &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn corruption_changes_exactly_one_side() {
        let store = TripleStore::from_triples([t(0, 0, 1)]);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..100, stores);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..200 {
            let neg = sampler.corrupt(&t(0, 0, 1), &mut rng);
            let head_changed = neg.head != EntityId(0);
            let tail_changed = neg.tail != EntityId(1);
            assert!(head_changed ^ tail_changed, "exactly one side must change: {neg}");
            assert_eq!(neg.rel.index(), 0, "relation must be preserved");
        }
    }

    #[test]
    fn known_positives_rejected() {
        // Universe of 3 entities; all (0, r, x) are positive except x=2.
        let store = TripleStore::from_triples([t(0, 0, 1), t(0, 0, 0), t(1, 0, 1), t(2, 0, 1)]);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..3, stores);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let neg = sampler.corrupt(&t(0, 0, 1), &mut rng);
            assert!(!store.contains(&neg), "sampled a known positive {neg}");
        }
    }

    #[test]
    fn both_sides_eventually_corrupted() {
        let store = TripleStore::new();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..50, stores);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let negs = sampler.corrupt_n(&t(5, 1, 6), 100, &mut rng);
        assert!(negs.iter().any(|n| n.head != EntityId(5)));
        assert!(negs.iter().any(|n| n.tail != EntityId(6)));
    }

    #[test]
    fn candidate_range_respected() {
        let store = TripleStore::new();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(10..20, stores);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let neg = sampler.corrupt(&t(10, 0, 11), &mut rng);
            for e in [neg.head, neg.tail] {
                assert!((10..20).contains(&e.0) || e == EntityId(10) || e == EntityId(11));
            }
        }
    }

    #[test]
    fn bernoulli_prefers_the_safer_side() {
        // Relation 0 is one-to-many: head 0 has many tails. tph ≫ hpt →
        // corrupting the head is safer and must dominate.
        let mut triples = Vec::new();
        for t in 1..20u32 {
            triples.push(Triple::from_raw(0, 0, t));
        }
        let store = TripleStore::from_triples(triples);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..100, stores).with_bernoulli(&store);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let positive = t(0, 0, 5);
        let mut head_corruptions = 0;
        let total = 400;
        for _ in 0..total {
            let neg = sampler.corrupt(&positive, &mut rng);
            if neg.head != positive.head {
                head_corruptions += 1;
            }
        }
        assert!(
            head_corruptions as f64 > 0.8 * total as f64,
            "head corruption should dominate for one-to-many: {head_corruptions}/{total}"
        );
    }

    #[test]
    fn bernoulli_unknown_relation_falls_back_to_fair_coin() {
        let store = TripleStore::from_triples([t(0, 0, 1)]);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..50, stores).with_bernoulli(&store);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Relation 7 has no statistics; both sides must appear.
        let positive = t(3, 7, 4);
        let negs: Vec<Triple> = (0..100).map(|_| sampler.corrupt(&positive, &mut rng)).collect();
        assert!(negs.iter().any(|n| n.head != positive.head));
        assert!(negs.iter().any(|n| n.tail != positive.tail));
    }

    #[test]
    fn corrupt_batch_is_thread_count_invariant() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 0, 2), t(2, 0, 3)]);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..40, stores);
        let positives: Vec<Triple> = (0..25).map(|i| t(i % 4, 0, (i + 1) % 4)).collect();
        let run = |threads: usize| -> Vec<Triple> {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| sampler.corrupt_batch(&positives, 3, 0xDEC0))
        };
        let serial = run(1);
        assert_eq!(serial.len(), 75);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
        // And the serial path equals an explicit per-slot loop.
        let explicit: Vec<Triple> = (0..75u64)
            .map(|slot| {
                let mut rng = crate::seeding::item_rng(0xDEC0, slot);
                sampler.corrupt(&positives[slot as usize / 3], &mut rng)
            })
            .collect();
        assert_eq!(serial, explicit);
    }

    #[test]
    fn corrupt_batch_respects_sampler_semantics() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(0, 0, 0), t(1, 0, 1), t(2, 0, 1)]);
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..3, stores);
        let positives = vec![t(0, 0, 1); 20];
        for neg in sampler.corrupt_batch(&positives, 2, 5) {
            assert!(!store.contains(&neg), "sampled a known positive {neg}");
        }
    }

    #[test]
    #[should_panic(expected = "empty candidate range")]
    fn empty_range_rejected() {
        // The reversed range IS the input under test: it must panic.
        #[allow(clippy::reversed_empty_ranges)]
        NegativeSampler::new(5..5, vec![]);
    }
}
