//! The [`DekgDataset`] container: one original KG, one disconnected
//! emerging KG, and held-out links of both classes.

use dekg_kg::{EntityId, Triple, TripleStore, Vocab};
use serde::{Deserialize, Serialize};

/// Which side of the DEKG boundary a test link spans (Definitions 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Both endpoints in `G'` (unseen–unseen).
    Enclosing,
    /// One endpoint in `G`, the other in `G'`.
    Bridging,
}

impl LinkClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::Enclosing => "enclosing",
            LinkClass::Bridging => "bridging",
        }
    }
}

/// A complete DEKG evaluation dataset.
///
/// Entity-id layout: ids `0..num_original_entities` belong to `G`
/// (seen), the rest to `G'` (unseen). The relation space is shared.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DekgDataset {
    /// Human-readable dataset name.
    pub name: String,
    /// Shared vocabulary (entities of both graphs + relations).
    pub vocab: Vocab,
    /// Number of entities belonging to the original KG.
    pub num_original_entities: usize,
    /// Size of the shared relation space.
    pub num_relations: usize,
    /// The original KG `G` — the training triples.
    pub original: TripleStore,
    /// The emerging KG `G'` — observed structure at inference time.
    pub emerging: TripleStore,
    /// Held-out links inside `G` for validation.
    pub valid: Vec<Triple>,
    /// Held-out enclosing links (inside `G'`).
    pub test_enclosing: Vec<Triple>,
    /// Held-out bridging links (between `G` and `G'`).
    pub test_bridging: Vec<Triple>,
}

impl DekgDataset {
    /// Total entity universe size (`|E| + |E'|`).
    pub fn num_entities(&self) -> usize {
        self.vocab.num_entities()
    }

    /// True when `e` belongs to the original KG (was seen in training).
    pub fn is_original(&self, e: EntityId) -> bool {
        e.index() < self.num_original_entities
    }

    /// Classifies a link by its endpoints.
    ///
    /// Returns `None` for links entirely inside `G` (transductive links,
    /// which never occur in the test sets here).
    pub fn classify(&self, t: &Triple) -> Option<LinkClass> {
        match (self.is_original(t.head), self.is_original(t.tail)) {
            (false, false) => Some(LinkClass::Enclosing),
            (true, false) | (false, true) => Some(LinkClass::Bridging),
            (true, true) => None,
        }
    }

    /// The inference graph `G ∪ G'`: everything observable at test time.
    pub fn inference_store(&self) -> TripleStore {
        let mut store = self.original.clone();
        store.extend_from(&self.emerging);
        store
    }

    /// All held-out triples (valid + both test classes) — the filter set
    /// complement used by the filtered ranking protocol.
    pub fn heldout_store(&self) -> TripleStore {
        let mut store = TripleStore::new();
        for t in self.valid.iter().chain(&self.test_enclosing).chain(&self.test_bridging) {
            store.insert(*t);
        }
        store
    }

    /// Checks the structural invariants of a DEKG:
    /// `G ⊆ E×R×E`, `G' ⊆ E'×R×E'`, no overlap, class labels correct.
    ///
    /// Returns the first violation as a typed [`ValidationError`] — the
    /// loader surfaces these through the CLI for on-disk datasets,
    /// where a broken file is an input error, not a programming bug.
    ///
    /// # Errors
    /// The first invariant violation found, if any.
    pub fn try_validate(&self) -> Result<(), ValidationError> {
        for t in self.original.triples() {
            if !(self.is_original(t.head) && self.is_original(t.tail)) {
                return Err(ValidationError::OriginalTouchesUnseen(*t));
            }
        }
        for t in self.emerging.triples() {
            if self.is_original(t.head) || self.is_original(t.tail) {
                return Err(ValidationError::EmergingTouchesSeen(*t));
            }
        }
        for t in &self.test_enclosing {
            if self.classify(t) != Some(LinkClass::Enclosing) {
                return Err(ValidationError::MislabeledEnclosing(*t));
            }
            if self.emerging.contains(t) {
                return Err(ValidationError::TestLinkLeaked(*t));
            }
        }
        for t in &self.test_bridging {
            if self.classify(t) != Some(LinkClass::Bridging) {
                return Err(ValidationError::MislabeledBridging(*t));
            }
            if self.original.contains(t) || self.emerging.contains(t) {
                return Err(ValidationError::TestLinkLeaked(*t));
            }
        }
        for t in &self.valid {
            if self.classify(t).is_some() {
                return Err(ValidationError::ValidOutsideOriginal(*t));
            }
            if self.original.contains(t) {
                return Err(ValidationError::ValidLinkLeaked(*t));
            }
        }
        if self.num_relations == 0 {
            return Err(ValidationError::EmptyRelationSpace);
        }
        Ok(())
    }

    /// [`DekgDataset::try_validate`], panicking on the first violation —
    /// for tests and the generator's self-check, where a violation is a
    /// programming bug.
    ///
    /// # Panics
    /// On any violation, with the violation's `Display` message.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// A structural invariant of [`DekgDataset`] that does not hold.
///
/// The `Display` messages are stable: tests assert on their phrasing
/// (`#[should_panic(expected = …)]` through [`DekgDataset::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// A triple of `G` uses an entity outside `E`.
    OriginalTouchesUnseen(Triple),
    /// A triple of `G'` uses an entity of `E`.
    EmergingTouchesSeen(Triple),
    /// A test link labeled enclosing is not unseen–unseen.
    MislabeledEnclosing(Triple),
    /// A test link labeled bridging is not seen–unseen.
    MislabeledBridging(Triple),
    /// A held-out test link also appears in an observed graph.
    TestLinkLeaked(Triple),
    /// A validation link leaves the original KG's entity set.
    ValidOutsideOriginal(Triple),
    /// A validation link also appears in `G`.
    ValidLinkLeaked(Triple),
    /// The relation space is empty.
    EmptyRelationSpace,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OriginalTouchesUnseen(t) => {
                write!(f, "original KG triple {t} touches an unseen entity")
            }
            Self::EmergingTouchesSeen(t) => {
                write!(f, "emerging KG triple {t} touches a seen entity")
            }
            Self::MislabeledEnclosing(t) => write!(f, "mislabeled enclosing link {t}"),
            Self::MislabeledBridging(t) => write!(f, "mislabeled bridging link {t}"),
            Self::TestLinkLeaked(t) => write!(f, "test link {t} leaked into an observed graph"),
            Self::ValidOutsideOriginal(t) => write!(f, "valid link {t} should be inside G"),
            Self::ValidLinkLeaked(t) => write!(f, "valid link {t} leaked into G"),
            Self::EmptyRelationSpace => write!(f, "dataset has an empty relation space"),
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built minimal dataset: G = {0,1}, G' = {2,3}.
    pub(crate) fn tiny() -> DekgDataset {
        let mut vocab = Vocab::new();
        for n in ["a", "b", "x", "y"] {
            vocab.intern_entity(n);
        }
        vocab.intern_relation("r");
        DekgDataset {
            name: "tiny".into(),
            vocab,
            num_original_entities: 2,
            num_relations: 1,
            original: TripleStore::from_triples([Triple::from_raw(0, 0, 1)]),
            emerging: TripleStore::from_triples([Triple::from_raw(2, 0, 3)]),
            valid: vec![Triple::from_raw(1, 0, 0)],
            test_enclosing: vec![Triple::from_raw(3, 0, 2)],
            test_bridging: vec![Triple::from_raw(0, 0, 2)],
        }
    }

    #[test]
    fn classification() {
        let d = tiny();
        assert_eq!(d.classify(&Triple::from_raw(2, 0, 3)), Some(LinkClass::Enclosing));
        assert_eq!(d.classify(&Triple::from_raw(0, 0, 3)), Some(LinkClass::Bridging));
        assert_eq!(d.classify(&Triple::from_raw(3, 0, 1)), Some(LinkClass::Bridging));
        assert_eq!(d.classify(&Triple::from_raw(0, 0, 1)), None);
    }

    #[test]
    fn inference_store_unions() {
        let d = tiny();
        let inf = d.inference_store();
        assert_eq!(inf.len(), 2);
        assert!(inf.contains(&Triple::from_raw(0, 0, 1)));
        assert!(inf.contains(&Triple::from_raw(2, 0, 3)));
    }

    #[test]
    fn heldout_store_collects_all() {
        let d = tiny();
        let h = d.heldout_store();
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn tiny_validates() {
        tiny().validate();
    }

    #[test]
    #[should_panic(expected = "touches a seen entity")]
    fn validate_catches_crossing_edge() {
        let mut d = tiny();
        d.emerging.insert(Triple::from_raw(0, 0, 3)); // crosses the boundary
        d.validate();
    }

    #[test]
    #[should_panic(expected = "mislabeled enclosing link")]
    fn validate_catches_mislabel() {
        let mut d = tiny();
        d.test_enclosing.push(Triple::from_raw(0, 0, 2));
        d.validate();
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        assert_eq!(tiny().try_validate(), Ok(()));
        let mut d = tiny();
        let crossing = Triple::from_raw(0, 0, 3);
        d.emerging.insert(crossing);
        assert_eq!(d.try_validate(), Err(ValidationError::EmergingTouchesSeen(crossing)));
        let mut d = tiny();
        d.num_relations = 0;
        assert_eq!(d.try_validate(), Err(ValidationError::EmptyRelationSpace));
    }
}
