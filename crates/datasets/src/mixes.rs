//! EQ/MB/ME test-mix construction (Section V-A).
//!
//! The paper evaluates on test sets mixing enclosing and bridging links
//! at fixed ratios: 1:1 (EQ), 1:2 (MB) and 2:1 (ME). A [`TestMix`] is
//! that final evaluation set with per-link class labels retained so the
//! "respective study" (Fig. 5) can re-split it.

use crate::profiles::SplitKind;
use crate::splits::{DekgDataset, LinkClass};
use dekg_kg::Triple;

/// An enclosing : bridging mixing ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatio {
    /// Parts of enclosing links.
    pub enclosing: usize,
    /// Parts of bridging links.
    pub bridging: usize,
}

impl MixRatio {
    /// The ratio for a named split kind.
    pub fn for_split(kind: SplitKind) -> MixRatio {
        let (e, b) = kind.ratio();
        MixRatio { enclosing: e, bridging: b }
    }
}

/// A labeled evaluation set.
#[derive(Debug, Clone)]
pub struct TestMix {
    /// `(triple, class)` pairs, enclosing first then bridging.
    pub links: Vec<(Triple, LinkClass)>,
}

impl TestMix {
    /// Builds a mix from a dataset's held-out pools at `ratio`.
    ///
    /// Uses as many links as the pools allow while keeping the exact
    /// ratio; pool order is preserved (pools are already shuffled by
    /// generation order).
    ///
    /// # Panics
    /// If either ratio part is zero or a required pool is empty.
    pub fn build(dataset: &DekgDataset, ratio: MixRatio) -> TestMix {
        assert!(ratio.enclosing > 0 && ratio.bridging > 0, "ratio parts must be positive");
        assert!(!dataset.test_enclosing.is_empty(), "no enclosing links available");
        assert!(!dataset.test_bridging.is_empty(), "no bridging links available");
        // Largest k with k*enc <= pool_e and k*bri <= pool_b.
        let k = (dataset.test_enclosing.len() / ratio.enclosing)
            .min(dataset.test_bridging.len() / ratio.bridging)
            .max(1);
        let n_enc = (k * ratio.enclosing).min(dataset.test_enclosing.len());
        let n_bri = (k * ratio.bridging).min(dataset.test_bridging.len());
        let mut links = Vec::with_capacity(n_enc + n_bri);
        links.extend(dataset.test_enclosing[..n_enc].iter().map(|&t| (t, LinkClass::Enclosing)));
        links.extend(dataset.test_bridging[..n_bri].iter().map(|&t| (t, LinkClass::Bridging)));
        TestMix { links }
    }

    /// Only the links of one class.
    pub fn of_class(&self, class: LinkClass) -> Vec<Triple> {
        self.links.iter().filter(|(_, c)| *c == class).map(|(t, _)| *t).collect()
    }

    /// Count per class: `(enclosing, bridging)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let enc = self.links.iter().filter(|(_, c)| *c == LinkClass::Enclosing).count();
        (enc, self.links.len() - enc)
    }

    /// Total number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DatasetProfile, RawKg};
    use crate::synth::{generate, SynthConfig};

    fn dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.2);
        let mut cfg = SynthConfig::for_profile(profile, 42);
        cfg.num_test_enclosing = 60;
        cfg.num_test_bridging = 60;
        generate(&cfg)
    }

    #[test]
    fn eq_mix_is_balanced() {
        let d = dataset();
        let mix = TestMix::build(&d, MixRatio::for_split(SplitKind::Eq));
        let (e, b) = mix.class_counts();
        assert_eq!(e, b);
        assert!(e > 0);
    }

    #[test]
    fn mb_mix_has_double_bridging() {
        let d = dataset();
        let mix = TestMix::build(&d, MixRatio::for_split(SplitKind::Mb));
        let (e, b) = mix.class_counts();
        assert_eq!(b, 2 * e);
    }

    #[test]
    fn me_mix_has_double_enclosing() {
        let d = dataset();
        let mix = TestMix::build(&d, MixRatio::for_split(SplitKind::Me));
        let (e, b) = mix.class_counts();
        assert_eq!(e, 2 * b);
    }

    #[test]
    fn of_class_filters() {
        let d = dataset();
        let mix = TestMix::build(&d, MixRatio::for_split(SplitKind::Eq));
        let enc = mix.of_class(LinkClass::Enclosing);
        let bri = mix.of_class(LinkClass::Bridging);
        assert_eq!(enc.len() + bri.len(), mix.len());
        for t in &enc {
            assert_eq!(d.classify(t), Some(LinkClass::Enclosing));
        }
        for t in &bri {
            assert_eq!(d.classify(t), Some(LinkClass::Bridging));
        }
    }
}
