//! Epoch batch assembly: shuffle → chunk → parallel negative sampling.
//!
//! Algorithm 1 consumes the training triples as shuffled fixed-size
//! batches, each paired with `neg_per_pos` corruptions per positive
//! (Eq. 12). Assembly is embarrassingly parallel *if* the randomness is
//! split correctly; this module does that with the
//! [`crate::seeding::split_seed`] scheme:
//!
//! * index 0 under the master seed shuffles the positives,
//! * index `1 + b` becomes the negative-sampling master seed of batch
//!   `b`, which [`NegativeSampler::corrupt_batch`] further splits per
//!   output slot.
//!
//! Batches are then built concurrently over the ambient `rayon` thread
//! count, and the whole epoch is a pure function of
//! `(positives, master_seed)` — bitwise-identical at any thread count.

use crate::negatives::NegativeSampler;
use crate::seeding::{item_rng, split_seed};
use dekg_kg::Triple;
use rand::seq::SliceRandom;

/// One assembled training batch.
///
/// `positives[k]` is the positive that `negatives[k]` corrupts: each
/// original positive appears `neg_per_pos` times consecutively, so the
/// two sides align index-by-index for the margin loss (Eq. 14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingBatch {
    /// Positives, each repeated `neg_per_pos` times.
    pub positives: Vec<Triple>,
    /// One corruption per repeated positive, index-aligned.
    pub negatives: Vec<Triple>,
}

/// Assembles one epoch of training batches.
///
/// Shuffles `positives`, chunks them into `batch_size` groups, and
/// draws `neg_per_pos` negatives per positive — batches in parallel,
/// negatives per-slot-seeded. See the module docs for the seed-split
/// layout; the output depends only on the inputs and `master_seed`.
///
/// # Panics
/// If `batch_size` or `neg_per_pos` is zero.
pub fn assemble_epoch(
    positives: &[Triple],
    batch_size: usize,
    neg_per_pos: usize,
    sampler: &NegativeSampler<'_>,
    master_seed: u64,
) -> Vec<TrainingBatch> {
    use rayon::prelude::*;
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(neg_per_pos > 0, "neg_per_pos must be positive");

    let mut shuffled = positives.to_vec();
    shuffled.shuffle(&mut item_rng(master_seed, 0));

    let chunks: Vec<(usize, &[Triple])> = shuffled.chunks(batch_size).enumerate().collect();
    chunks
        .par_iter()
        .map(|&(b, chunk)| {
            build_batch(chunk, neg_per_pos, sampler, split_seed(master_seed, 1 + b as u64))
        })
        .collect()
}

/// Builds one aligned batch: repeats each positive `neg_per_pos` times
/// and corrupts every repetition under the per-slot seeding of
/// [`NegativeSampler::corrupt_batch`].
pub fn build_batch(
    chunk: &[Triple],
    neg_per_pos: usize,
    sampler: &NegativeSampler<'_>,
    batch_seed: u64,
) -> TrainingBatch {
    let positives: Vec<Triple> =
        chunk.iter().flat_map(|t| std::iter::repeat(*t).take(neg_per_pos)).collect();
    let negatives = sampler.corrupt_batch(chunk, neg_per_pos, batch_seed);
    TrainingBatch { positives, negatives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::TripleStore;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    fn fixture() -> (TripleStore, Vec<Triple>) {
        let positives: Vec<Triple> = (0..37).map(|i| t(i % 6, i % 2, (i + 1) % 6)).collect();
        let store = TripleStore::from_triples(positives.clone());
        (store, positives)
    }

    #[test]
    fn epoch_is_thread_count_invariant() {
        let (store, positives) = fixture();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..30, stores);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| assemble_epoch(&positives, 8, 2, &sampler, 0xFEED))
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(3));
    }

    #[test]
    fn epoch_covers_every_positive_exactly_once() {
        let (store, positives) = fixture();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..30, stores);
        let batches = assemble_epoch(&positives, 10, 3, &sampler, 1);
        let mut seen: Vec<Triple> =
            batches.iter().flat_map(|b| b.positives.iter().copied().step_by(3)).collect();
        let mut expect = positives.clone();
        seen.sort_unstable_by_key(|t| (t.head, t.rel, t.tail));
        expect.sort_unstable_by_key(|t| (t.head, t.rel, t.tail));
        assert_eq!(seen, expect);
    }

    #[test]
    fn batches_are_aligned_and_sized() {
        let (store, positives) = fixture();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..30, stores);
        let batches = assemble_epoch(&positives, 8, 2, &sampler, 2);
        assert_eq!(batches.len(), 37usize.div_ceil(8));
        for b in &batches {
            assert_eq!(b.positives.len(), b.negatives.len());
            for (p, n) in b.positives.iter().zip(&b.negatives) {
                assert_eq!(p.rel, n.rel, "corruption must preserve the relation");
                assert!(p.head == n.head || p.tail == n.tail);
            }
        }
    }

    #[test]
    fn different_master_seeds_differ() {
        let (store, positives) = fixture();
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..30, stores);
        assert_ne!(
            assemble_epoch(&positives, 8, 2, &sampler, 3),
            assemble_epoch(&positives, 8, 2, &sampler, 4)
        );
    }
}
