//! Loading a DEKG dataset from GraIL-style split files.
//!
//! Expected directory layout (all TSV `head\trel\ttail`):
//!
//! ```text
//! <dir>/train.txt            # original KG G
//! <dir>/valid.txt            # held-out links inside G
//! <dir>/emerging.txt         # observed emerging KG G'
//! <dir>/test_enclosing.txt   # held-out enclosing links
//! <dir>/test_bridging.txt    # held-out bridging links
//! ```
//!
//! `train.txt`/`valid.txt` are interned first so original-KG entities
//! occupy the low id range, then the emerging files. The loader
//! enforces the DEKG invariants via [`DekgDataset::validate`].

use crate::splits::{DekgDataset, ValidationError};
use dekg_kg::io::{load_triples, ParseError};
use dekg_kg::Vocab;
use std::path::Path;

/// Errors raised by [`load_dir`].
#[derive(Debug)]
pub enum LoadError {
    /// A file failed to parse.
    Parse(&'static str, ParseError),
    /// The files parsed but violate a DEKG structural invariant.
    Invalid(ValidationError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(file, e) => write!(f, "{file}: {e}"),
            LoadError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads a dataset from a GraIL-style directory.
///
/// # Errors
/// [`LoadError::Parse`] when a file is missing or malformed;
/// [`LoadError::Invalid`] when the files parse but violate a DEKG
/// invariant (cross edges, leaked test links, …) — on-disk data is
/// caller input, so violations surface as typed errors through the
/// CLI rather than panics. Use [`load_dir_unchecked`] to inspect
/// broken data without dying on the first violation.
pub fn load_dir(dir: impl AsRef<Path>, name: &str) -> Result<DekgDataset, LoadError> {
    let dataset = load_dir_unchecked(dir, name)?;
    dataset.try_validate().map_err(LoadError::Invalid)?;
    Ok(dataset)
}

/// [`load_dir`] without the invariant self-check.
///
/// This exists for diagnostic tools (`dekg check`) that want to report
/// *every* violation in a malformed directory instead of panicking at
/// the first one; anything that trains or evaluates should go through
/// [`load_dir`].
pub fn load_dir_unchecked(dir: impl AsRef<Path>, name: &str) -> Result<DekgDataset, LoadError> {
    let dir = dir.as_ref();
    let mut vocab = Vocab::new();
    let load = |vocab: &mut Vocab, file: &'static str| {
        load_triples(dir.join(file), vocab).map_err(|e| LoadError::Parse(file, e))
    };

    let original = load(&mut vocab, "train.txt")?;
    let valid_store = load(&mut vocab, "valid.txt")?;
    let num_original_entities = vocab.num_entities();
    let emerging = load(&mut vocab, "emerging.txt")?;
    let test_enclosing = load(&mut vocab, "test_enclosing.txt")?;
    let test_bridging = load(&mut vocab, "test_bridging.txt")?;

    let num_relations = vocab.num_relations();
    Ok(DekgDataset {
        name: name.to_owned(),
        vocab,
        num_original_entities,
        num_relations,
        original,
        emerging,
        valid: valid_store.triples().to_vec(),
        test_enclosing: test_enclosing.triples().to_vec(),
        test_bridging: test_bridging.triples().to_vec(),
    })
}

/// Writes a dataset back out in the same layout (for inspection or for
/// sharing generated benchmarks).
pub fn save_dir(dataset: &DekgDataset, dir: impl AsRef<Path>) -> std::io::Result<()> {
    use dekg_kg::io::write_triples;
    use dekg_kg::TripleStore;
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let write = |file: &str, store: &TripleStore| -> std::io::Result<()> {
        let f = std::fs::File::create(dir.join(file))?;
        write_triples(store, &dataset.vocab, std::io::BufWriter::new(f))
    };
    write("train.txt", &dataset.original)?;
    write("valid.txt", &TripleStore::from_triples(dataset.valid.iter().copied()))?;
    write("emerging.txt", &dataset.emerging)?;
    write(
        "test_enclosing.txt",
        &TripleStore::from_triples(dataset.test_enclosing.iter().copied()),
    )?;
    write("test_bridging.txt", &TripleStore::from_triples(dataset.test_bridging.iter().copied()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DatasetProfile, RawKg, SplitKind};
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn save_load_roundtrip() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.05);
        let d = generate(&SynthConfig::for_profile(profile, 3));
        let dir = std::env::temp_dir().join("dekg_loader_test");
        save_dir(&d, &dir).unwrap();
        let back = load_dir(&dir, "roundtrip").unwrap();
        assert_eq!(back.original.len(), d.original.len());
        assert_eq!(back.emerging.len(), d.emerging.len());
        assert_eq!(back.test_enclosing.len(), d.test_enclosing.len());
        assert_eq!(back.test_bridging.len(), d.test_bridging.len());
        assert_eq!(back.num_relations, d.num_relations);
        back.validate();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchecked_load_tolerates_broken_invariants() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.03);
        let d = generate(&SynthConfig::for_profile(profile, 4));
        let dir = std::env::temp_dir().join("dekg_loader_unchecked_test");
        save_dir(&d, &dir).unwrap();
        // Append an edge crossing the G/G' boundary.
        use std::io::Write;
        let mut f =
            std::fs::OpenOptions::new().append(true).open(dir.join("emerging.txt")).unwrap();
        writeln!(f, "g_e0\trel0\tp_e1").unwrap();
        drop(f);
        let back = load_dir_unchecked(&dir, "broken").unwrap();
        assert_eq!(back.emerging.len(), d.emerging.len() + 1);
        // The checked loader reports the same breakage as a typed
        // error, not a panic — it must surface cleanly through the CLI.
        match load_dir(&dir, "broken") {
            Err(LoadError::Invalid(e)) => {
                assert!(e.to_string().contains("touches a seen entity"), "{e}");
            }
            other => panic!("expected LoadError::Invalid, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let dir = std::env::temp_dir().join("dekg_loader_missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_dir(&dir, "missing").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
