//! Deterministic seed splitting for parallel sampling.
//!
//! The hermetic-RNG rule of this workspace is that every run is a pure
//! function of its seeds. Parallel sampling threatens that: if workers
//! share one RNG stream, the interleaving (and therefore the output)
//! depends on thread count and scheduling. The fix is to never share a
//! stream — each sampled *item* gets its own child seed derived from
//! `(master_seed, item_index)` by [`split_seed`], and its own short
//! ChaCha8 stream from [`item_rng`].
//!
//! Because the child seed depends only on the master seed and the item
//! index, the result of a parallel map over items is bitwise-identical
//! to the serial loop — at any thread count, under any chunking. This
//! is the scheme behind `NegativeSampler::corrupt_batch`, epoch
//! assembly in [`crate::batching`], and the per-query seeding in
//! `dekg-eval`; `DESIGN.md` has the full design note.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derives a decorrelated per-item seed from `(master, index)`.
///
/// Uses the SplitMix64 output mixer (Steele, Lea & Flood, "Fast
/// Splittable Pseudorandom Number Generators", OOPSLA 2014): the index
/// is spread by the golden-ratio increment and the mix finalizer makes
/// every output bit depend on every input bit, so consecutive indices
/// yield statistically independent child seeds.
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut z =
        master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hermetic per-item RNG: a ChaCha8 stream seeded with
/// [`split_seed`]`(master, index)`.
pub fn item_rng(master: u64, index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(split_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn neighboring_indices_decorrelate() {
        // Consecutive indices must not produce near-identical seeds.
        let a = split_seed(0, 0);
        let b = split_seed(0, 1);
        assert_ne!(a, b);
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} differing bits between indices 0 and 1");
    }

    #[test]
    fn master_seeds_separate_streams() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn item_rng_streams_are_independent_of_order() {
        // Drawing from item 5's rng is unaffected by whether item 4's
        // was ever created — the property parallel maps rely on.
        let mut direct = item_rng(9, 5);
        let _ = item_rng(9, 4).gen::<u64>();
        let mut after = item_rng(9, 5);
        assert_eq!(direct.gen::<u64>(), after.gen::<u64>());
    }
}
