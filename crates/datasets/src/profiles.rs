//! Generation targets: the Table II statistics of the paper's nine
//! evaluation datasets.

use serde::{Deserialize, Serialize};

/// The raw KG a dataset derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawKg {
    /// FB15k-237 — many relations, dense.
    Fb15k237,
    /// NELL-995 — medium relation count.
    Nell995,
    /// WN18RR — few relations, sparse.
    Wn18rr,
}

impl RawKg {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            RawKg::Fb15k237 => "FB15k-237",
            RawKg::Nell995 => "NELL-995",
            RawKg::Wn18rr => "WN18RR",
        }
    }

    /// All three raw KGs.
    pub fn all() -> [RawKg; 3] {
        [RawKg::Fb15k237, RawKg::Nell995, RawKg::Wn18rr]
    }
}

/// The test-mix family a dataset belongs to (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitKind {
    /// Equal enclosing : bridging (1:1), built from GraIL split v1.
    Eq,
    /// More bridging (1:2), built from GraIL split v2.
    Mb,
    /// More enclosing (2:1), built from GraIL split v3.
    Me,
}

impl SplitKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SplitKind::Eq => "EQ",
            SplitKind::Mb => "MB",
            SplitKind::Me => "ME",
        }
    }

    /// All three splits.
    pub fn all() -> [SplitKind; 3] {
        [SplitKind::Eq, SplitKind::Mb, SplitKind::Me]
    }

    /// Enclosing : bridging ratio of the final test mix.
    pub fn ratio(self) -> (usize, usize) {
        match self {
            SplitKind::Eq => (1, 1),
            SplitKind::Mb => (1, 2),
            SplitKind::Me => (2, 1),
        }
    }
}

/// Target statistics for one dataset (one Table II row pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Source raw KG.
    pub raw: RawKg,
    /// Mix family.
    pub split: SplitKind,
    /// `|R|` of the original KG `G`.
    pub relations_g: usize,
    /// `|E|` of `G`.
    pub entities_g: usize,
    /// `|T|` of `G`.
    pub triples_g: usize,
    /// `|R|` observed in the emerging KG `G'`.
    pub relations_gp: usize,
    /// `|E'|` of `G'`.
    pub entities_gp: usize,
    /// `|T|` of `G'`.
    pub triples_gp: usize,
}

impl DatasetProfile {
    /// Canonical dataset name, e.g. `"FB15k-237 EQ"`.
    pub fn name(&self) -> String {
        format!("{} {}", self.raw.name(), self.split.name())
    }

    /// Scales the dataset down by `factor` (for laptop-scale runs).
    ///
    /// Entities and triples scale linearly; the **relation space scales
    /// by `√factor`** — relation vocabularies do not shrink in
    /// proportion to graph size in real KGs (GraIL's small splits keep
    /// most relations), and preserving relative relation richness
    /// (FB15k-237 ≫ NELL-995 > WN18RR) is what the paper's analysis of
    /// CLRM depends on. Every count keeps a floor (≥ 2 relations, ≥ 8
    /// entities, ≥ 16 triples) so tiny factors still yield a usable
    /// graph.
    ///
    /// # Panics
    /// If `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> DatasetProfile {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor {factor} outside (0, 1]");
        let s = |x: usize, floor: usize| ((x as f64 * factor).round() as usize).max(floor);
        let rel_factor = factor.sqrt();
        let r = |x: usize| ((x as f64 * rel_factor).round() as usize).max(2);
        DatasetProfile {
            raw: self.raw,
            split: self.split,
            relations_g: r(self.relations_g),
            entities_g: s(self.entities_g, 8),
            triples_g: s(self.triples_g, 16),
            relations_gp: r(self.relations_gp).min(r(self.relations_g)),
            entities_gp: s(self.entities_gp, 8),
            triples_gp: s(self.triples_gp, 16),
        }
    }

    /// Average triples per entity of `G` — the `|T|/|E|` density the
    /// paper's ablation discussion references.
    pub fn density_g(&self) -> f64 {
        self.triples_g as f64 / self.entities_g as f64
    }

    /// Looks up the Table II profile for a `(raw, split)` pair.
    pub fn table2(raw: RawKg, split: SplitKind) -> DatasetProfile {
        use RawKg::*;
        use SplitKind::*;
        let (rg, eg, tg, rp, ep, tp) = match (raw, split) {
            (Fb15k237, Eq) => (180, 1594, 5226, 142, 1093, 2404),
            (Fb15k237, Mb) => (200, 2608, 12085, 172, 1660, 5570),
            (Fb15k237, Me) => (215, 3668, 22394, 183, 2501, 9569),
            (Nell995, Eq) => (14, 3103, 5540, 14, 225, 1034),
            (Nell995, Mb) => (88, 2564, 10109, 79, 2086, 5997),
            (Nell995, Me) => (142, 4647, 20117, 122, 3566, 10072),
            (Wn18rr, Eq) => (9, 2746, 6678, 8, 922, 1991),
            (Wn18rr, Mb) => (10, 6954, 18968, 10, 2757, 5304),
            (Wn18rr, Me) => (11, 12078, 32150, 11, 5084, 7772),
        };
        DatasetProfile {
            raw,
            split,
            relations_g: rg,
            entities_g: eg,
            triples_g: tg,
            relations_gp: rp,
            entities_gp: ep,
            triples_gp: tp,
        }
    }

    /// All nine Table II profiles in paper order.
    pub fn all_table2() -> Vec<DatasetProfile> {
        let mut out = Vec::with_capacity(9);
        for split in SplitKind::all() {
            for raw in RawKg::all() {
                out.push(Self::table2(raw, split));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_values() {
        let p = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq);
        assert_eq!(p.relations_g, 180);
        assert_eq!(p.entities_g, 1594);
        assert_eq!(p.triples_g, 5226);
        assert_eq!(p.relations_gp, 142);
        assert_eq!(p.entities_gp, 1093);
        assert_eq!(p.triples_gp, 2404);

        let w = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Me);
        assert_eq!(w.entities_g, 12078);
        assert_eq!(w.triples_g, 32150);
    }

    #[test]
    fn nine_profiles_total() {
        assert_eq!(DatasetProfile::all_table2().len(), 9);
    }

    #[test]
    fn names_match_paper() {
        let p = DatasetProfile::table2(RawKg::Nell995, SplitKind::Mb);
        assert_eq!(p.name(), "NELL-995 MB");
    }

    #[test]
    fn scaling_preserves_floors_and_shrinks() {
        let p = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Me);
        let s = p.scaled(0.1);
        assert!(s.triples_g < p.triples_g);
        assert!(s.relations_g >= 2 && s.entities_g >= 8 && s.triples_g >= 16);
        let tiny = p.scaled(1e-6);
        assert_eq!(tiny.relations_g, 2);
        assert_eq!(tiny.entities_g, 8);
        assert_eq!(tiny.triples_g, 16);
    }

    #[test]
    fn scaled_gp_relations_never_exceed_g() {
        for p in DatasetProfile::all_table2() {
            for f in [0.05, 0.2, 1.0] {
                let s = p.scaled(f);
                assert!(s.relations_gp <= s.relations_g, "{} @ {f}", p.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_scale_rejected() {
        DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.0);
    }

    #[test]
    fn ratios_match_section_5a() {
        assert_eq!(SplitKind::Eq.ratio(), (1, 1));
        assert_eq!(SplitKind::Mb.ratio(), (1, 2));
        assert_eq!(SplitKind::Me.ratio(), (2, 1));
    }

    #[test]
    fn density_ordering_matches_ablation_discussion() {
        // The paper attributes stronger contrastive gains on FB15k-237
        // MB/ME and NELL-995 ME to higher |T|/|E|; check those densities
        // do exceed e.g. WN18RR ME's.
        let dense = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Me).density_g();
        let sparse = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Me).density_g();
        assert!(dense > sparse);
    }
}
