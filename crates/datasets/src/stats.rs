//! Table II-style dataset statistics.

use crate::splits::DekgDataset;
use dekg_kg::TripleStore;
use serde::{Deserialize, Serialize};

/// Statistics of one KG (`G` or `G'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Distinct relations appearing in triples.
    pub relations: usize,
    /// Distinct entities appearing in triples.
    pub entities: usize,
    /// Triple count.
    pub triples: usize,
}

impl GraphStats {
    /// Computes statistics for a store.
    pub fn of(store: &TripleStore) -> GraphStats {
        GraphStats {
            relations: store.relations().len(),
            entities: store.entities().len(),
            triples: store.len(),
        }
    }
}

/// A full Table II row pair plus held-out pool sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Stats of the original KG `G`.
    pub original: GraphStats,
    /// Stats of the emerging KG `G'`.
    pub emerging: GraphStats,
    /// Number of validation links.
    pub valid: usize,
    /// Number of held-out enclosing links.
    pub test_enclosing: usize,
    /// Number of held-out bridging links.
    pub test_bridging: usize,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn of(dataset: &DekgDataset) -> DatasetStats {
        DatasetStats {
            name: dataset.name.clone(),
            original: GraphStats::of(&dataset.original),
            emerging: GraphStats::of(&dataset.emerging),
            valid: dataset.valid.len(),
            test_enclosing: dataset.test_enclosing.len(),
            test_bridging: dataset.test_bridging.len(),
        }
    }

    /// Average triples per entity of `G` (`|T|/|E|`).
    pub fn density(&self) -> f64 {
        self.original.triples as f64 / self.original.entities.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DatasetProfile, RawKg, SplitKind};
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn stats_track_generated_dataset() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.1);
        let cfg = SynthConfig::for_profile(profile, 5);
        let d = generate(&cfg);
        let s = DatasetStats::of(&d);
        assert_eq!(s.original.triples, d.original.len());
        assert_eq!(s.emerging.triples, d.emerging.len());
        assert_eq!(s.test_enclosing, d.test_enclosing.len());
        assert!(s.original.relations <= profile.relations_g);
        assert!(s.density() > 0.0);
    }

    #[test]
    fn generated_stats_approximate_profile() {
        // The generator should land within 15% of the profile targets
        // for entities and triples.
        let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.3);
        let d = generate(&SynthConfig::for_profile(profile, 9));
        let s = DatasetStats::of(&d);
        let close =
            |got: usize, want: usize| (got as f64 - want as f64).abs() / want as f64 <= 0.15;
        assert!(close(s.original.entities, profile.entities_g), "{s:?}");
        assert!(close(s.original.triples, profile.triples_g), "{s:?}");
        assert!(close(s.emerging.triples, profile.triples_gp), "{s:?}");
    }
}
