#![warn(missing_docs)]

//! # dekg-datasets
//!
//! Benchmark-dataset substrate for the DEKG-ILP reproduction.
//!
//! The paper evaluates on GraIL's inductive splits of FB15k-237,
//! NELL-995 and WN18RR, augmented with *real* bridging links extracted
//! from the raw KGs, mixed at ratios 1:1 (**EQ**), 1:2 (**MB**, more
//! bridging) and 2:1 (**ME**, more enclosing). Those raw KGs are not
//! available offline, so this crate provides:
//!
//! * [`profiles`] — the Table II statistics of all nine datasets as
//!   generation targets,
//! * [`synth`] — a deterministic generator producing an original KG `G`,
//!   a disconnected emerging KG `G'` and held-out enclosing/bridging
//!   links, with a latent **entity-type / relation-signature** model
//!   that preserves the structural regimes the paper's findings hinge
//!   on (see `DESIGN.md`),
//! * [`splits`] — the [`DekgDataset`] container and derived views,
//! * [`mixes`] — EQ/MB/ME test-mix construction,
//! * [`negatives`] — corruption-based negative sampling,
//! * [`stats`] — Table II-style statistics over any dataset,
//! * [`loader`] — GraIL-format directory loading so real splits can be
//!   substituted when available.

pub mod batching;
pub mod loader;
pub mod mixes;
pub mod negatives;
pub mod profiles;
pub mod seeding;
pub mod splits;
pub mod stats;
pub mod synth;

pub use batching::{assemble_epoch, TrainingBatch};
pub use mixes::{MixRatio, TestMix};
pub use negatives::NegativeSampler;
pub use profiles::{DatasetProfile, RawKg, SplitKind};
pub use seeding::{item_rng, split_seed};
pub use splits::{DekgDataset, LinkClass, ValidationError};
pub use stats::DatasetStats;
pub use synth::{generate, tiny_fixture, SynthConfig};
