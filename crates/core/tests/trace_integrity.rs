//! Trace integrity under thread- and schedule-perturbation.
//!
//! `scripts/check.sh` runs this suite a second time under
//! `DEKG_SHUFFLE_SCHEDULE=1`, so the rayon shim's perturbed work order
//! exercises the same assertions: hierarchical span nesting stays
//! well-formed when spans close on many threads in shuffled order, and
//! the kernel profiler's deterministic columns (call counts, bytes
//! moved) are identical no matter which thread records which tape.
//! Wall-clock seconds are measurement, not output, and are never
//! compared here.

use dekg_tensor::{prof, Graph, ParamStore, Tensor};
use rayon::{IntoParallelRefIterator, ThreadPoolBuilder};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Serializes the tests in this binary: span table, chrome buffer and
/// profiler tables are process globals.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One small but real tape: record, forward, backward. Returns the
/// loss bits so callers can also pin determinism across schedules.
fn run_tape(item: u64) -> u32 {
    let mut ps = ParamStore::new();
    let seedf = (item % 7) as f32 - 3.0;
    let w = ps
        .insert("w", Tensor::from_vec([4, 4], (0..16).map(|i| seedf + i as f32 * 0.25).collect()));
    let mut g = Graph::new();
    let wv = g.param(&ps, w);
    let prod = g.matmul(wv, wv);
    let act = g.sigmoid(prod);
    let loss = g.mean_all(act);
    let grads = g.backward(loss);
    std::hint::black_box(&grads);
    g.value(loss).item().to_bits()
}

/// The profiler's deterministic columns, keyed by op mnemonic.
fn deterministic_columns() -> BTreeMap<&'static str, (u64, u64, u64, u64)> {
    prof::snapshot()
        .ops
        .iter()
        .map(|o| (o.op, (o.forward_calls, o.forward_bytes, o.backward_calls, o.backward_bytes)))
        .collect()
}

#[test]
fn per_op_totals_are_thread_and_schedule_invariant() {
    let _guard = lock();
    let items: Vec<u64> = (0..24).collect();

    // Serial reference.
    prof::reset();
    prof::set_enabled(true);
    let serial_bits: Vec<u32> = items.iter().map(|&i| run_tape(i)).collect();
    prof::set_enabled(false);
    let serial = deterministic_columns();
    assert!(!serial.is_empty(), "serial run recorded no ops");

    // Two parallel runs: the shim re-shuffles its schedule per call
    // under DEKG_SHUFFLE_SCHEDULE=1, so these two interleavings differ
    // from each other as well as from the serial order.
    let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
    for round in 0..2 {
        prof::reset();
        prof::set_enabled(true);
        let par_bits: Vec<u32> = pool.install(|| items.par_iter().map(|&i| run_tape(i)).collect());
        prof::set_enabled(false);
        let parallel = deterministic_columns();
        assert_eq!(
            serial, parallel,
            "round {round}: per-op calls/bytes diverged between serial and parallel recording"
        );
        assert_eq!(serial_bits, par_bits, "round {round}: loss bits depend on the schedule");
    }
    prof::reset();
}

#[test]
fn tape_structure_rows_fold_identically_across_schedules() {
    let _guard = lock();
    // 12 executions over 3 distinct structure keys, folded from
    // whatever thread happens to run them.
    let keys: Vec<u64> = (0..12).map(|i| 100 + i % 3).collect();
    let fold_rows = || -> Vec<(u64, u64, u64)> {
        prof::snapshot().tapes.iter().map(|t| (t.key, t.executions, t.nodes)).collect()
    };

    prof::reset();
    for &k in &keys {
        prof::record_tape(k, 50 + k, 0.01);
    }
    let serial = fold_rows();

    let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
    prof::reset();
    pool.install(|| {
        let _: Vec<()> = keys.par_iter().map(|&k| prof::record_tape(k, 50 + k, 0.01)).collect();
    });
    assert_eq!(serial, fold_rows(), "folded tape rows depend on the recording schedule");
    prof::reset();
}

/// One parsed `"X"` event from a Chrome trace file.
struct Ev {
    name: String,
    tid: u64,
    ts: f64,
    dur: f64,
    trace: u64,
    span: u64,
    parent: u64,
}

fn parse_chrome(path: &std::path::Path) -> Vec<Ev> {
    let text = std::fs::read_to_string(path).expect("read chrome trace");
    let serde::Value::Array(events) = serde_json::parse_value(&text).expect("parse chrome trace")
    else {
        panic!("chrome trace is not a JSON array");
    };
    let num = |pairs: &[(String, serde::Value)], key: &str| -> f64 {
        match pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            Some(serde::Value::Num(serde::Number::F(f))) => *f,
            Some(serde::Value::Num(serde::Number::U(u))) => *u as f64,
            Some(serde::Value::Num(serde::Number::I(i))) => *i as f64,
            other => panic!("{key}: not a number: {other:?}"),
        }
    };
    let mut out = Vec::new();
    for e in &events {
        let serde::Value::Object(pairs) = e else { panic!("event is not an object") };
        let str_field = |key: &str| -> String {
            match pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(serde::Value::Str(s)) => s.clone(),
                other => panic!("{key}: not a string: {other:?}"),
            }
        };
        if str_field("ph") != "X" {
            continue;
        }
        let serde::Value::Object(args) =
            pairs.iter().find(|(k, _)| k == "args").map(|(_, v)| v).expect("args")
        else {
            panic!("args is not an object")
        };
        out.push(Ev {
            name: str_field("name"),
            tid: num(pairs, "tid") as u64,
            ts: num(pairs, "ts"),
            dur: num(pairs, "dur"),
            trace: num(args, "trace_id") as u64,
            span: num(args, "span_id") as u64,
            parent: num(args, "parent_id") as u64,
        });
    }
    out
}

#[test]
fn span_nesting_is_well_formed_under_parallel_shuffled_close_order() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("dekg-trace-integrity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("trace.json");

    dekg_obs::set_chrome_trace_path(path.to_str().expect("utf8 path"));
    let items: Vec<u64> = (0..16).collect();
    let pool = ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
    let _: Vec<u32> = pool.install(|| {
        items
            .par_iter()
            .map(|&i| {
                let _outer = dekg_obs::span!("ti_outer");
                let _inner = dekg_obs::span!("ti_inner");
                run_tape(i)
            })
            .collect()
    });
    dekg_obs::write_chrome_trace();
    dekg_obs::set_tracing_enabled(false);
    dekg_obs::chrome::clear_chrome_trace();

    let events = parse_chrome(&path);
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Exactly one outer and one inner per item, whatever the schedule.
    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    assert_eq!(count("ti_outer"), items.len());
    assert_eq!(count("ti_inner"), items.len());

    // Span ids are unique and nonzero.
    let mut by_span: BTreeMap<u64, &Ev> = BTreeMap::new();
    for e in &events {
        assert_ne!(e.span, 0, "span id 0 is reserved for 'none'");
        assert!(by_span.insert(e.span, e).is_none(), "duplicate span id {}", e.span);
    }

    // Every inner nests under an outer: the parent exists, shares the
    // trace, is the right shape, and its interval contains the child's
    // (half a microsecond of slack for independent f64 rounding).
    const EPS: f64 = 0.5;
    for e in events.iter().filter(|e| e.name == "ti_inner") {
        let p = by_span.get(&e.parent).expect("inner span's parent was exported");
        assert_eq!(p.name, "ti_outer", "inner nests under an outer span");
        assert_eq!(p.trace, e.trace, "parent and child share a trace");
        assert_eq!(p.tid, e.tid, "parent and child close on the opening thread");
        assert!(
            p.ts <= e.ts + EPS && e.ts + e.dur <= p.ts + p.dur + EPS,
            "child [{} +{}] escapes parent [{} +{}]",
            e.ts,
            e.dur,
            p.ts,
            p.dur
        );
    }
    // Outers are roots: the worker's span stack fully unwinds between
    // items, so no outer inherits a stale parent from a prior item.
    for e in events.iter().filter(|e| e.name == "ti_outer") {
        assert_eq!(e.parent, 0, "outer span must be a root");
    }

    // Events append at close time under one lock: within a tid, end
    // timestamps never decrease in file order.
    let mut last_end: BTreeMap<u64, f64> = BTreeMap::new();
    for e in &events {
        let end = e.ts + e.dur;
        if let Some(&prev) = last_end.get(&e.tid) {
            assert!(end + EPS >= prev, "tid {}: close order regressed ({} < {})", e.tid, end, prev);
        }
        last_end.insert(e.tid, end);
    }
}
