#![warn(missing_docs)]

//! # dekg-core
//!
//! The paper's primary contribution: **DEKG-ILP**, a model predicting
//! both *enclosing* and *bridging* links for unseen entities in
//! disconnected emerging knowledge graphs.
//!
//! Two modules compose the final score `φ = φ_sem + φ_tpo` (Eq. 13):
//!
//! * [`clrm`] — **C**ontrastive **L**earning-based **R**elation-specific
//!   Feature **M**odeling: entity-independent semantic embeddings fused
//!   from learned per-relation features (Eq. 3), a DistMult decoder
//!   (Eq. 4) and a semantic-aware contrastive loss over
//!   relation-component-table perturbations (Eq. 5–7).
//! * [`gsm`] — **G**NN-based **S**ubgraph **M**odeling: GraIL-style
//!   subgraph reasoning with the improved node labeling that survives
//!   the "topological limitation" of bridging links (Eq. 8–11).
//!
//! [`model::DekgIlp`] wires the two together and [`train`] implements
//! Algorithm 1. [`traits`] defines the [`traits::LinkPredictor`]
//! interface shared with every baseline in `dekg-baselines`.
//!
//! ```no_run
//! use dekg_core::prelude::*;
//! use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
//! use rand::SeedableRng;
//!
//! let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.05);
//! let data = generate(&SynthConfig::for_profile(profile, 1));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//!
//! let mut model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
//! model.fit(&data, &mut rng);
//!
//! let graph = InferenceGraph::from_dataset(&data);
//! let scores = model.score_batch(&graph, &data.test_bridging);
//! ```

pub mod clrm;
pub mod config;
pub mod explain;
pub mod gsm;
pub mod model;
pub mod profile;
pub mod train;
pub mod traits;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{Ablation, DekgIlpConfig};
    pub use crate::model::{DekgIlp, ScoringPath};
    pub use crate::traits::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
}

pub use config::{Ablation, DekgIlpConfig};
pub use model::{DekgIlp, ScoringPath};
pub use profile::{profile_eval, profile_train, profile_train_outputs, ProfileReport};
pub use train::{
    batch_loss, batch_loss_parts, grad_check_dataset, prepare_batch, record_prepared,
    tape_check_dataset, BatchLossBreakdown, PreparedBatch,
};
pub use traits::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
