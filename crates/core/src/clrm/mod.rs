//! CLRM — Contrastive Learning-based Relation-specific Feature Modeling.
//!
//! The module learns one feature vector `f_k` per relation (Eq. 1) and
//! represents any entity — seen or unseen — as the count-weighted mean
//! of the features of its associated relations (Eq. 3):
//!
//! ```text
//! e_i = Σ_k a_i^k · f_k / Σ_k a_i^k
//! ```
//!
//! Because the fusion consumes only the entity's relation-component
//! table, original-KG and emerging-KG entities land in the *same*
//! feature space with no shared topology required — this is what lets
//! DEKG-ILP score bridging links at all.
//!
//! The semantic likelihood of a triple is a DistMult form (Eq. 4):
//! `φ_sem = Σ_d e_i[d] · r_k[d] · e_j[d]`.
//!
//! [`sampling`] implements the semantic-aware perturbations (o₁–o₃)
//! whose positive/negative examples drive the contrastive loss (Eq. 7).

pub mod sampling;

use dekg_kg::{ComponentRow, ComponentTable, Triple};
use dekg_tensor::{init, Graph, ParamId, ParamStore, Tensor, Var};
use rand::Rng;

/// The CLRM parameters: relation features `F` and the semantic decoder
/// embeddings `r^sem`.
///
/// ```
/// use dekg_core::clrm::Clrm;
/// use dekg_kg::{ComponentRow, RelationId};
/// use dekg_tensor::{Graph, ParamStore};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut params = ParamStore::new();
/// let clrm = Clrm::new(4, 8, "clrm", &mut params, &mut rng);
///
/// // An entity associated with relation 1 three times and relation 2
/// // once — its embedding is the 3:1 weighted mean of those features,
/// // no entity identity involved.
/// let row = ComponentRow::from_pairs([(RelationId(1), 3), (RelationId(2), 1)]);
/// let mut g = Graph::new();
/// let emb = clrm.fuse_rows(&mut g, &params, &[&row]);
/// assert_eq!(g.shape(emb).dims(), &[1, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Clrm {
    num_relations: usize,
    dim: usize,
    /// `F ∈ R^{|R| × d}` — relation-specific features (Eq. 1).
    features: ParamId,
    /// `r^sem ∈ R^{|R| × d}` — DistMult decoder weights (Eq. 4).
    rel_sem: ParamId,
}

impl Clrm {
    /// Registers CLRM parameters under `prefix`.
    pub fn new(
        num_relations: usize,
        dim: usize,
        prefix: &str,
        params: &mut ParamStore,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_relations > 0 && dim > 0);
        let features = params
            .insert(format!("{prefix}.features"), init::xavier_uniform([num_relations, dim], rng));
        let rel_sem = params
            .insert(format!("{prefix}.rel_sem"), init::xavier_uniform([num_relations, dim], rng));
        Clrm { num_relations, dim, features, rel_sem }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Relation-space size `|R|`.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// The normalized fusion weights of one component row: a dense
    /// `[|R|]` vector with `a_i^k / Σ a_i^k` (all zeros for an empty
    /// row, yielding a zero embedding).
    fn fusion_weights(&self, row: &ComponentRow) -> Vec<f32> {
        let mut w = vec![0.0f32; self.num_relations];
        let total = row.total();
        if total > 0 {
            let inv = 1.0 / total as f32;
            for &(rel, count) in row.entries() {
                w[rel.index()] = count as f32 * inv;
            }
        }
        w
    }

    /// Fuses a batch of component rows into semantic embeddings
    /// `[rows.len(), d]` (Eq. 3). Differentiates into `F`.
    pub fn fuse_rows(&self, g: &mut Graph, params: &ParamStore, rows: &[&ComponentRow]) -> Var {
        assert!(!rows.is_empty(), "fuse_rows on empty batch");
        let mut data = Vec::with_capacity(rows.len() * self.num_relations);
        for row in rows {
            data.extend_from_slice(&self.fusion_weights(row));
        }
        let weights = g.constant(Tensor::from_vec(vec![rows.len(), self.num_relations], data));
        let f = g.param(params, self.features);
        g.matmul(weights, f)
    }

    /// Fuses entities by id using a component table.
    pub fn fuse_entities(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        tables: &ComponentTable,
        entities: &[dekg_kg::EntityId],
    ) -> Var {
        let rows: Vec<&ComponentRow> = entities.iter().map(|&e| tables.row(e)).collect();
        self.fuse_rows(g, params, &rows)
    }

    /// Semantic scores `φ_sem` for a batch of triples: `[batch]` (Eq. 4).
    pub fn score(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        tables: &ComponentTable,
        triples: &[Triple],
    ) -> Var {
        assert!(!triples.is_empty(), "score on empty batch");
        let heads: Vec<_> = triples.iter().map(|t| t.head).collect();
        let tails: Vec<_> = triples.iter().map(|t| t.tail).collect();
        let rels: Vec<usize> = triples.iter().map(|t| t.rel.index()).collect();
        let e_i = self.fuse_entities(g, params, tables, &heads);
        let e_j = self.fuse_entities(g, params, tables, &tails);
        let rel_sem = g.param(params, self.rel_sem);
        let r = g.gather_rows(rel_sem, &rels);
        g.trilinear_rows(e_i, r, e_j)
    }

    /// The contrastive loss (Eq. 7) for one anchor entity given
    /// perturbed positive/negative rows:
    ///
    /// `L_c = mean([dist(e_pos, e) − dist(e_neg, e) + γ]_+)`
    ///
    /// where `dist` is the Euclidean distance and pairs are aligned by
    /// index.
    ///
    /// # Panics
    /// If the pair counts differ or are zero.
    pub fn contrastive_loss(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        anchor: &ComponentRow,
        positives: &[ComponentRow],
        negatives: &[ComponentRow],
        margin: f32,
    ) -> Var {
        assert_eq!(positives.len(), negatives.len(), "pos/neg counts must match");
        assert!(!positives.is_empty(), "need at least one contrastive pair");
        let n = positives.len();
        let anchor_rows: Vec<&ComponentRow> = vec![anchor; n];
        let pos_rows: Vec<&ComponentRow> = positives.iter().collect();
        let neg_rows: Vec<&ComponentRow> = negatives.iter().collect();
        let e_anchor = self.fuse_rows(g, params, &anchor_rows);
        let e_pos = self.fuse_rows(g, params, &pos_rows);
        let e_neg = self.fuse_rows(g, params, &neg_rows);
        let d_pos = g.rowwise_dist(e_pos, e_anchor);
        let d_neg = g.rowwise_dist(e_neg, e_anchor);
        let diff = g.sub(d_pos, d_neg);
        let shifted = g.add_scalar(diff, margin);
        let hinge = g.relu(shifted);
        g.mean_all(hinge)
    }

    /// Extracts the current (non-differentiable) embedding of one row —
    /// used by the Fig. 8 heat-map case study.
    pub fn embed_row(&self, params: &ParamStore, row: &ComponentRow) -> Vec<f32> {
        let w = self.fusion_weights(row);
        let f = params.get(self.features);
        let mut out = vec![0.0f32; self.dim];
        for (k, &wk) in w.iter().enumerate() {
            if wk != 0.0 {
                for (o, &x) in out.iter_mut().zip(f.row(k)) {
                    *o += wk * x;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::{RelationId, TripleStore};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (ParamStore, Clrm, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let clrm = Clrm::new(4, 8, "clrm", &mut ps, &mut rng);
        (ps, clrm, rng)
    }

    fn row(pairs: &[(u32, u32)]) -> ComponentRow {
        ComponentRow::from_pairs(pairs.iter().map(|&(r, c)| (RelationId(r), c)))
    }

    #[test]
    fn fusion_is_weighted_mean_of_features() {
        let (ps, clrm, _) = setup();
        // Entity with only relation 2 → embedding equals f_2 exactly.
        let r = row(&[(2, 5)]);
        let mut g = Graph::new();
        let e = clrm.fuse_rows(&mut g, &ps, &[&r]);
        let f2 = ps.get(ps.id_of("clrm.features").unwrap()).row(2).to_vec();
        assert_eq!(g.value(e).row(0), &f2[..]);
    }

    #[test]
    fn fusion_mixes_proportionally() {
        let (ps, clrm, _) = setup();
        // Counts 3:1 between relations 0 and 1.
        let r = row(&[(0, 3), (1, 1)]);
        let mut g = Graph::new();
        let e = clrm.fuse_rows(&mut g, &ps, &[&r]);
        let f = ps.get(ps.id_of("clrm.features").unwrap());
        for d in 0..8 {
            let want = 0.75 * f.at(&[0, d]) + 0.25 * f.at(&[1, d]);
            assert!((g.value(e).at(&[0, d]) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_row_fuses_to_zero() {
        let (ps, clrm, _) = setup();
        let r = ComponentRow::empty();
        let mut g = Graph::new();
        let e = clrm.fuse_rows(&mut g, &ps, &[&r]);
        assert!(g.value(e).data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn score_shape_and_symmetry() {
        let (ps, clrm, _) = setup();
        // DistMult is symmetric in head/tail when embeddings coincide.
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(1, 1, 0)]);
        let tables = ComponentTable::from_store(&store, 2, 4);
        let mut g = Graph::new();
        let fwd = clrm.score(&mut g, &ps, &tables, &[Triple::from_raw(0, 0, 1)]);
        let bwd = clrm.score(&mut g, &ps, &tables, &[Triple::from_raw(1, 0, 0)]);
        assert_eq!(g.shape(fwd).dims(), &[1]);
        assert!((g.value(fwd).item() - g.value(bwd).item()).abs() < 1e-6);
    }

    #[test]
    fn unseen_entity_scoring_works_via_shared_relations() {
        let (ps, clrm, _) = setup();
        // Entities 0,1 "seen", 2,3 "unseen" — same relations though.
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(2, 0, 3)]);
        let tables = ComponentTable::from_store(&store, 4, 4);
        let mut g = Graph::new();
        // Bridging triple (0, r0, 3): must produce a finite score with
        // no shared topology at all.
        let s = clrm.score(&mut g, &ps, &tables, &[Triple::from_raw(0, 0, 3)]);
        assert!(g.value(s).item().is_finite());
        // Entity 2 has the same component table as entity 0 → the
        // scores of (0,r,1) and (2,r,1) must coincide.
        let a = clrm.score(&mut g, &ps, &tables, &[Triple::from_raw(0, 0, 1)]);
        let b = clrm.score(&mut g, &ps, &tables, &[Triple::from_raw(2, 0, 1)]);
        assert!((g.value(a).item() - g.value(b).item()).abs() < 1e-6);
    }

    #[test]
    fn contrastive_loss_orders_pairs() {
        let (ps, clrm, _) = setup();
        let anchor = row(&[(0, 4), (1, 2)]);
        // Positive: same relations, varied counts. Negative: disjoint
        // relation set.
        let pos = vec![row(&[(0, 2), (1, 3)])];
        let neg = vec![row(&[(2, 3), (3, 1)])];
        let mut g = Graph::new();
        let loss = clrm.contrastive_loss(&mut g, &ps, &anchor, &pos, &neg, 1.0);
        let v = g.value(loss).item();
        assert!(v.is_finite() && v >= 0.0);
    }

    #[test]
    fn contrastive_training_separates_embeddings() {
        use dekg_tensor::optim::{Adam, Optimizer};
        let (mut ps, clrm, _) = setup();
        let anchor = row(&[(0, 4), (1, 2)]);
        let pos = vec![row(&[(0, 2), (1, 3)]), row(&[(0, 6), (1, 1)])];
        let neg = vec![row(&[(2, 3)]), row(&[(3, 2)])];
        let mut opt = Adam::new(0.05);
        let loss_val = |ps: &ParamStore| {
            let mut g = Graph::new();
            let l = clrm.contrastive_loss(&mut g, ps, &anchor, &pos, &neg, 1.0);
            (g.value(l).item(), g.backward(l))
        };
        let (before, _) = loss_val(&ps);
        for _ in 0..100 {
            let (_, grads) = loss_val(&ps);
            opt.step(&mut ps, &grads);
        }
        let (after, _) = loss_val(&ps);
        assert!(after < before, "contrastive loss should drop: {before} -> {after}");
    }

    #[test]
    fn embed_row_matches_graph_fusion() {
        let (ps, clrm, _) = setup();
        let r = row(&[(0, 1), (3, 2)]);
        let mut g = Graph::new();
        let e = clrm.fuse_rows(&mut g, &ps, &[&r]);
        let direct = clrm.embed_row(&ps, &r);
        for (a, b) in g.value(e).row(0).iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
