//! Semantic-aware contrastive sampling (Section IV-B2).
//!
//! The intuition: an entity's *semantic identity* is the set of
//! relations it participates in, not the exact counts. So:
//!
//! * **o₁ — relation variation**: change the count of an existing
//!   relation to a random value in `[1, m_i·θ]` → semantics preserved →
//!   **positive** example.
//! * **o₂ — relation addition**: give the entity a brand-new relation
//!   with count in `[1, m_i·θ]` → new semantics attached → **negative**.
//! * **o₃ — relation deletion**: remove *all* triples of an existing
//!   relation → semantics removed → **negative**.
//!
//! `m_i` is the entity's mean per-relation triple count (Eq. 5) and `θ`
//! a scaling hyper-parameter.

use dekg_kg::{ComponentRow, RelationId};
use rand::Rng;

/// Upper bound of a perturbed count: `max(1, round(m_i · θ))`.
fn count_cap(row: &ComponentRow, theta: f32) -> u32 {
    ((row.mean_count() * theta).round() as u32).max(1)
}

/// o₁ — varies the count of one randomly chosen existing relation.
///
/// Returns the row unchanged when it is empty.
pub fn relation_variation(row: &ComponentRow, theta: f32, rng: &mut impl Rng) -> ComponentRow {
    if row.is_empty() {
        return row.clone();
    }
    let mut out = row.clone();
    let (rel, _) = row.entries()[rng.gen_range(0..row.num_relations())];
    let cap = count_cap(row, theta);
    out.set(rel, rng.gen_range(1..=cap));
    out
}

/// o₂ — attaches a randomly chosen *new* relation.
///
/// Returns `None` when every relation is already present.
pub fn relation_addition(
    row: &ComponentRow,
    num_relations: usize,
    theta: f32,
    rng: &mut impl Rng,
) -> Option<ComponentRow> {
    let absent: Vec<u32> =
        (0..num_relations as u32).filter(|&r| row.count(RelationId(r)) == 0).collect();
    let &rel = absent.get(rng.gen_range(0..absent.len().max(1)))?;
    let mut out = row.clone();
    let cap = count_cap(row, theta);
    out.set(RelationId(rel), rng.gen_range(1..=cap));
    Some(out)
}

/// o₃ — deletes all triples of one randomly chosen existing relation.
///
/// Returns `None` for empty rows.
pub fn relation_deletion(row: &ComponentRow, rng: &mut impl Rng) -> Option<ComponentRow> {
    if row.is_empty() {
        return None;
    }
    let mut out = row.clone();
    let (rel, _) = row.entries()[rng.gen_range(0..row.num_relations())];
    out.set(rel, 0);
    Some(out)
}

/// Generates a positive example: a short random sequence of o₁.
pub fn positive_example(row: &ComponentRow, theta: f32, rng: &mut impl Rng) -> ComponentRow {
    let mut out = row.clone();
    for _ in 0..rng.gen_range(1..=3) {
        out = relation_variation(&out, theta, rng);
    }
    out
}

/// Generates a negative example: a random sequence of o₂ and o₃,
/// guaranteed to change the row's relation *set* (at least one addition
/// or deletion succeeds; empty rows get an addition).
pub fn negative_example(
    row: &ComponentRow,
    num_relations: usize,
    theta: f32,
    rng: &mut impl Rng,
) -> ComponentRow {
    let relation_set =
        |r: &ComponentRow| -> Vec<u32> { r.entries().iter().map(|&(rel, _)| rel.0).collect() };
    let original_set = relation_set(row);
    let mut out = row.clone();
    for _ in 0..rng.gen_range(1..=3) {
        if rng.gen::<bool>() {
            if let Some(next) = relation_addition(&out, num_relations, theta, rng) {
                out = next;
                continue;
            }
        }
        // Keep at least one relation so the negative stays embeddable.
        if out.num_relations() > 1 {
            if let Some(next) = relation_deletion(&out, rng) {
                out = next;
            }
        }
    }
    // A sequence like "add r, delete r" can net out to the original
    // relation set; force a real semantic change in that case.
    if relation_set(&out) == original_set {
        if let Some(next) = relation_addition(&out, num_relations, theta, rng) {
            out = next;
        } else if out.num_relations() > 1 {
            if let Some(next) = relation_deletion(&out, rng) {
                out = next;
            }
        } else if let Some(next) = relation_deletion(&out, rng) {
            // Saturated single-relation universe: deleting the only
            // relation is the only remaining change.
            out = next;
        }
    }
    out
}

/// Convenience: `n` positive and `n` negative examples for one row.
pub fn sample_pairs(
    row: &ComponentRow,
    num_relations: usize,
    theta: f32,
    n: usize,
    rng: &mut impl Rng,
) -> (Vec<ComponentRow>, Vec<ComponentRow>) {
    let pos = (0..n).map(|_| positive_example(row, theta, rng)).collect();
    let neg = (0..n).map(|_| negative_example(row, num_relations, theta, rng)).collect();
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeSet;

    fn row(pairs: &[(u32, u32)]) -> ComponentRow {
        ComponentRow::from_pairs(pairs.iter().map(|&(r, c)| (RelationId(r), c)))
    }

    fn rel_set(r: &ComponentRow) -> BTreeSet<u32> {
        r.entries().iter().map(|&(rel, _)| rel.0).collect()
    }

    #[test]
    fn variation_preserves_relation_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let base = row(&[(0, 4), (2, 2)]);
        for _ in 0..100 {
            let v = relation_variation(&base, 2.0, &mut rng);
            assert_eq!(rel_set(&v), rel_set(&base), "o1 must not change the set");
            // Count stays within [1, m_i * θ] = [1, 6].
            for &(_, c) in v.entries() {
                assert!((1..=6).contains(&c) || c == 4 || c == 2);
            }
        }
    }

    #[test]
    fn variation_counts_bounded_by_theta() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = row(&[(0, 4), (2, 2)]); // m_i = 3, θ=2 → cap 6
        for _ in 0..200 {
            let v = relation_variation(&base, 2.0, &mut rng);
            for &(_, c) in v.entries() {
                assert!(c <= 6, "count {c} exceeds m_i·θ");
            }
        }
    }

    #[test]
    fn addition_introduces_new_relation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = row(&[(0, 3)]);
        for _ in 0..50 {
            let a = relation_addition(&base, 4, 2.0, &mut rng).unwrap();
            assert_eq!(a.num_relations(), 2);
            assert!(rel_set(&a).is_superset(&rel_set(&base)));
        }
    }

    #[test]
    fn addition_none_when_saturated() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let base = row(&[(0, 1), (1, 1)]);
        assert!(relation_addition(&base, 2, 2.0, &mut rng).is_none());
    }

    #[test]
    fn deletion_removes_whole_relation() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let base = row(&[(0, 3), (1, 5)]);
        for _ in 0..50 {
            let d = relation_deletion(&base, &mut rng).unwrap();
            assert_eq!(d.num_relations(), 1);
        }
        assert!(relation_deletion(&ComponentRow::empty(), &mut rng).is_none());
    }

    #[test]
    fn positives_keep_semantics_negatives_change_them() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let base = row(&[(0, 4), (1, 2), (3, 1)]);
        for _ in 0..100 {
            let p = positive_example(&base, 2.0, &mut rng);
            assert_eq!(rel_set(&p), rel_set(&base), "positive changed the relation set");
            let n = negative_example(&base, 6, 2.0, &mut rng);
            assert_ne!(rel_set(&n), rel_set(&base), "negative kept the relation set");
        }
    }

    #[test]
    fn negative_of_empty_row_gets_a_relation() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = negative_example(&ComponentRow::empty(), 4, 2.0, &mut rng);
        assert!(!n.is_empty());
    }

    #[test]
    fn sample_pairs_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let base = row(&[(0, 2), (1, 2)]);
        let (pos, neg) = sample_pairs(&base, 8, 2.0, 10, &mut rng);
        assert_eq!(pos.len(), 10);
        assert_eq!(neg.len(), 10);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let base = row(&[(0, 2), (1, 4), (2, 1)]);
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            sample_pairs(&base, 8, 2.0, 5, &mut rng)
        };
        assert_eq!(run(9), run(9));
    }
}
