//! DEKG-ILP hyperparameters and ablation switches.

use dekg_gnn::LabelingMode;
use dekg_kg::ExtractionMode;
use serde::{Deserialize, Serialize};

/// Ablation switches matching Section V-G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ablation {
    /// `false` removes `φ_sem` from Eq. 13 → the **DEKG-ILP-R** variant.
    pub use_semantic: bool,
    /// `false` sets `σ = 0` in Eq. 15 → the **DEKG-ILP-C** variant.
    pub use_contrastive: bool,
    /// `false` reverts to GraIL's pruning labeling → **DEKG-ILP-N**.
    pub improved_labeling: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation { use_semantic: true, use_contrastive: true, improved_labeling: true }
    }
}

impl Ablation {
    /// The full model.
    pub fn full() -> Self {
        Self::default()
    }

    /// DEKG-ILP-R: no relation-specific semantic score.
    pub fn without_semantic() -> Self {
        Ablation { use_semantic: false, ..Self::default() }
    }

    /// DEKG-ILP-C: no contrastive loss.
    pub fn without_contrastive() -> Self {
        Ablation { use_contrastive: false, ..Self::default() }
    }

    /// DEKG-ILP-N: original GraIL node labeling.
    pub fn without_improved_labeling() -> Self {
        Ablation { improved_labeling: false, ..Self::default() }
    }

    /// Variant name as used in Fig. 6.
    pub fn variant_name(&self) -> &'static str {
        match (self.use_semantic, self.use_contrastive, self.improved_labeling) {
            (true, true, true) => "DEKG-ILP",
            (false, _, _) => "DEKG-ILP-R",
            (true, false, true) => "DEKG-ILP-C",
            (true, true, false) => "DEKG-ILP-N",
            _ => "DEKG-ILP-custom",
        }
    }
}

/// Full hyperparameter set. Field defaults follow Section V-D's optimal
/// configuration: `lr = 0.01`, `d = 32`, `β = 0.5`, `σ = 0.1`, one
/// negative per positive, 10 contrastive examples per entity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DekgIlpConfig {
    /// Embedding dimension `d` for both modules.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (the paper runs 100; scaled runs use fewer).
    pub epochs: usize,
    /// Triples per training batch.
    pub batch_size: usize,
    /// Margin `γ` shared by the ranking loss (Eq. 14) and the
    /// contrastive loss (Eq. 7).
    pub margin: f32,
    /// Contrastive-loss coefficient `σ` (Eq. 15).
    pub sigma: f32,
    /// Scaling factor `θ` bounding the perturbed counts in o₁/o₂.
    pub theta: f32,
    /// Contrastive positive/negative examples per entity.
    pub num_contrastive: usize,
    /// Negative triples per positive (Eq. 12).
    pub neg_per_pos: usize,
    /// Edge dropout rate `β` in the GNN.
    pub edge_dropout: f32,
    /// Subgraph hop bound `t`.
    pub hops: u32,
    /// Number of R-GCN layers `L`.
    pub gnn_layers: usize,
    /// Attention embedding width in the GNN.
    pub attn_dim: usize,
    /// Gradient-clipping threshold (global norm).
    pub grad_clip: f32,
    /// Multiplicative learning-rate decay applied after each epoch
    /// (1.0 = constant rate).
    pub lr_decay: f32,
    /// Use TransH-style Bernoulli side selection for negative sampling
    /// instead of a fair coin.
    pub bernoulli_negatives: bool,
    /// Basis decomposition for the GNN's relation weights (GraIL's
    /// default is 4 bases); keeps GSM's parameter complexity at
    /// `O(|R|·d·l)` as analyzed in the paper's Section V-H.
    pub num_bases: Option<usize>,
    /// When positive, every N-th training batch is re-verified by the
    /// f64 reference interpreter (`Graph::diff_check`): forward values
    /// and parameter gradients are compared against the optimized
    /// kernels, and training aborts on divergence. `0` (the default)
    /// disables the spot check.
    pub gradcheck_every: usize,
    /// When `true`, every training batch's tape is statically analyzed
    /// (`dekg_tensor::tapecheck`): abstract shapes are cross-checked
    /// against recorded values, gradient-flow reachability flags dead
    /// parameters, and the memory plan's predicted peak is exported as
    /// a gauge. Structurally identical batches hit an analysis cache,
    /// so steady-state overhead is a single hash of the tape.
    pub tape_report: bool,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for DekgIlpConfig {
    fn default() -> Self {
        DekgIlpConfig {
            dim: 32,
            lr: 0.01,
            epochs: 100,
            batch_size: 32,
            margin: 1.0,
            sigma: 0.1,
            theta: 2.0,
            num_contrastive: 10,
            neg_per_pos: 1,
            edge_dropout: 0.5,
            hops: 2,
            gnn_layers: 3,
            attn_dim: 8,
            grad_clip: 5.0,
            lr_decay: 1.0,
            bernoulli_negatives: false,
            num_bases: Some(4),
            gradcheck_every: 0,
            tape_report: false,
            ablation: Ablation::full(),
        }
    }
}

impl DekgIlpConfig {
    /// The paper's optimal configuration at full scale.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A fast configuration for tests and scaled experiments. Uses
    /// full per-relation weights (`num_bases: None`) — at small dims
    /// the basis indirection costs more than it saves.
    pub fn quick() -> Self {
        DekgIlpConfig {
            dim: 16,
            epochs: 5,
            batch_size: 16,
            num_contrastive: 3,
            gnn_layers: 2,
            num_bases: None,
            ..Self::default()
        }
    }

    /// The extraction mode implied by the labeling ablation.
    pub fn extraction_mode(&self) -> ExtractionMode {
        if self.ablation.improved_labeling {
            ExtractionMode::Union
        } else {
            ExtractionMode::Intersection
        }
    }

    /// The labeling mode implied by the labeling ablation.
    pub fn labeling_mode(&self) -> LabelingMode {
        if self.ablation.improved_labeling {
            LabelingMode::Improved
        } else {
            LabelingMode::Grail
        }
    }

    /// Validates hyperparameter ranges.
    ///
    /// # Panics
    /// On out-of-range values; called by the model constructor.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.lr > 0.0, "lr must be positive");
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.margin >= 0.0, "margin must be non-negative");
        assert!(self.sigma >= 0.0, "sigma must be non-negative");
        assert!(self.theta >= 1.0, "theta must be ≥ 1 (count range [1, m_i·θ])");
        assert!(self.neg_per_pos > 0, "need at least one negative per positive");
        assert!((0.0..1.0).contains(&self.edge_dropout), "edge_dropout in [0,1)");
        assert!(self.hops > 0 && self.gnn_layers > 0 && self.attn_dim > 0);
        assert!(self.grad_clip > 0.0);
        assert!(self.lr_decay > 0.0 && self.lr_decay <= 1.0, "lr_decay must be in (0, 1]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_5d() {
        let c = DekgIlpConfig::paper();
        assert_eq!(c.dim, 32);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.edge_dropout, 0.5);
        assert_eq!(c.sigma, 0.1);
        assert_eq!(c.neg_per_pos, 1);
        assert_eq!(c.num_contrastive, 10);
        c.validate();
    }

    #[test]
    fn ablation_names() {
        assert_eq!(Ablation::full().variant_name(), "DEKG-ILP");
        assert_eq!(Ablation::without_semantic().variant_name(), "DEKG-ILP-R");
        assert_eq!(Ablation::without_contrastive().variant_name(), "DEKG-ILP-C");
        assert_eq!(Ablation::without_improved_labeling().variant_name(), "DEKG-ILP-N");
    }

    #[test]
    fn labeling_ablation_switches_modes() {
        let mut c = DekgIlpConfig::quick();
        assert_eq!(c.extraction_mode(), ExtractionMode::Union);
        assert_eq!(c.labeling_mode(), LabelingMode::Improved);
        c.ablation = Ablation::without_improved_labeling();
        assert_eq!(c.extraction_mode(), ExtractionMode::Intersection);
        assert_eq!(c.labeling_mode(), LabelingMode::Grail);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn validate_rejects_bad_theta() {
        let c = DekgIlpConfig { theta: 0.5, ..DekgIlpConfig::quick() };
        c.validate();
    }
}
