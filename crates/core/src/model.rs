//! The combined DEKG-ILP model (Eq. 13) and its [`LinkPredictor`] /
//! [`TrainableModel`] implementations.

use crate::clrm::Clrm;
use crate::config::DekgIlpConfig;
use crate::gsm::Gsm;
use crate::traits::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_gnn::SubgraphEncoderConfig;
use dekg_kg::{DistanceBackend, SubgraphExtractor, Triple};
use dekg_tensor::{Graph, ParamStore};
use rand::RngCore;

/// Which GSM implementation evaluation scoring runs through.
///
/// Both produce bitwise-identical scores (a tested invariant); training
/// always uses the tape, since it needs gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringPath {
    /// Forward-only kernels, no autograd tape — the default: evaluation
    /// needs no gradients, and the tape's node bookkeeping dominates
    /// scoring cost.
    #[default]
    Inference,
    /// Score through the autograd tape
    /// ([`Gsm::score_subgraphs_eval`]) — the seed pipeline, kept as the
    /// baseline the perf harness measures against.
    TapeReference,
}

/// DEKG-ILP: CLRM ⊕ GSM.
///
/// Construct with [`DekgIlp::new`], train with
/// [`TrainableModel::fit`], score with [`LinkPredictor::score_batch`].
/// Ablation variants are selected through
/// [`DekgIlpConfig::ablation`].
#[derive(Debug)]
pub struct DekgIlp {
    cfg: DekgIlpConfig,
    params: ParamStore,
    /// `None` under the `-R` ablation (no semantic module at all).
    clrm: Option<Clrm>,
    gsm: Gsm,
    num_relations: usize,
    /// Extraction implementation — runtime state, not a hyperparameter:
    /// both backends produce bit-identical subgraphs, so it is kept out
    /// of the serialized config (checkpoint `.json` stays stable).
    distance_backend: DistanceBackend,
    /// GSM scoring implementation — runtime state like the extraction
    /// backend, and kept out of the config for the same reason.
    scoring_path: ScoringPath,
}

impl DekgIlp {
    /// Allocates a model sized for `dataset`'s relation space.
    ///
    /// # Panics
    /// If the config fails [`DekgIlpConfig::validate`].
    pub fn new(cfg: DekgIlpConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let num_relations = dataset.num_relations;
        let mut params = ParamStore::new();
        let clrm = cfg
            .ablation
            .use_semantic
            .then(|| Clrm::new(num_relations, cfg.dim, "clrm", &mut params, &mut rng));
        let gsm = Gsm::new(
            SubgraphEncoderConfig {
                num_relations,
                hops: cfg.hops,
                dim: cfg.dim,
                layers: cfg.gnn_layers,
                attn_dim: cfg.attn_dim,
                edge_dropout: cfg.edge_dropout,
                labeling: cfg.labeling_mode(),
                num_bases: cfg.num_bases,
            },
            "gsm",
            &mut params,
            &mut rng,
        );
        DekgIlp {
            cfg,
            params,
            clrm,
            gsm,
            num_relations,
            distance_backend: DistanceBackend::default(),
            scoring_path: ScoringPath::default(),
        }
    }

    /// The subgraph-extraction backend scoring runs on.
    pub fn distance_backend(&self) -> DistanceBackend {
        self.distance_backend
    }

    /// Switches the extraction backend. [`DistanceBackend::DenseReference`]
    /// is the seed implementation, kept so the perf harness can measure
    /// the sparse backend against an identical-output baseline.
    pub fn set_distance_backend(&mut self, backend: DistanceBackend) {
        self.distance_backend = backend;
    }

    /// The GSM implementation evaluation scoring runs through.
    pub fn scoring_path(&self) -> ScoringPath {
        self.scoring_path
    }

    /// Switches the GSM scoring implementation.
    /// [`ScoringPath::TapeReference`] is the seed pipeline, kept so the
    /// perf harness can measure the forward-only path against an
    /// identical-output baseline.
    pub fn set_scoring_path(&mut self, path: ScoringPath) {
        self.scoring_path = path;
    }

    /// The model configuration.
    pub fn config(&self) -> &DekgIlpConfig {
        &self.cfg
    }

    /// Mutable configuration access.
    ///
    /// Structural fields (dim, layers, hops, ablation) must not change
    /// after construction — the parameters are already allocated; the
    /// training-schedule fields (epochs, lr, σ, …) may. Used by
    /// [`crate::train::train_with_validation`] to run epoch chunks.
    pub fn config_mut(&mut self) -> &mut DekgIlpConfig {
        &mut self.cfg
    }

    /// The parameter store (for checkpointing via `dekg_tensor::serialize`).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter access (training, checkpoint restore).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// The CLRM module, when the semantic branch is enabled.
    pub fn clrm(&self) -> Option<&Clrm> {
        self.clrm.as_ref()
    }

    /// The GSM module.
    pub fn gsm(&self) -> &Gsm {
        &self.gsm
    }

    /// Relation-space size the model was built for.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Writes the trained parameters to a binary checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, dekg_tensor::serialize::encode(&self.params))
    }

    /// Restores parameters from a checkpoint produced by
    /// [`DekgIlp::save_checkpoint`] on a model with the same
    /// configuration and relation space.
    ///
    /// # Errors
    /// IO failures or a corrupt/incompatible checkpoint.
    ///
    /// # Panics
    /// If the checkpoint's parameter set does not match this model's
    /// (different config/ablation) — mixing checkpoints across shapes
    /// is a programming error, not a runtime condition.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
        let bytes = std::fs::read(path)?;
        let restored = dekg_tensor::serialize::decode(&bytes)?;
        assert_eq!(
            restored.len(),
            self.params.len(),
            "checkpoint has {} parameters, model expects {}",
            restored.len(),
            self.params.len()
        );
        for (_, name, value) in restored.iter() {
            let id = self
                .params
                .id_of(name)
                .unwrap_or_else(|| panic!("checkpoint parameter {name:?} unknown to this model"));
            assert!(
                self.params.get(id).shape().same_as(value.shape()),
                "shape mismatch for {name:?}"
            );
            *self.params.get_mut(id) = value.clone();
        }
        Ok(())
    }

    /// Scores triples with both modules on a fresh tape (no dropout).
    ///
    /// Exposed for the training loop and explain tooling; external users
    /// go through [`LinkPredictor::score_batch`].
    pub(crate) fn score_internal(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let _span = dekg_obs::span!("score_batch");
        // φ_sem: one tape over the whole batch.
        let mut sem = vec![0.0f32; triples.len()];
        if let Some(clrm) = &self.clrm {
            let mut g = Graph::new();
            let s = clrm.score(&mut g, &self.params, &graph.tables, triples);
            sem.copy_from_slice(g.value(s).data());
        }

        // φ_tpo: batched tapes with parameters mounted once per chunk
        // (chunking bounds tape memory on large candidate sets). Chunks
        // are independent — each gets its own tape and mount — so they
        // fan out over the ambient rayon thread count; scoring is a
        // pure function of (params, subgraph), and the ordered collect
        // makes the result identical to the serial loop.
        const CHUNK: usize = 64;
        use rayon::prelude::*;
        let extractor =
            SubgraphExtractor::new(&graph.adjacency, self.cfg.hops, self.cfg.extraction_mode())
                .with_backend(self.distance_backend);
        let chunks: Vec<&[Triple]> = triples.chunks(CHUNK).collect();
        let tpo_chunks: Vec<Vec<f32>> = chunks
            .par_iter()
            .map(|chunk| {
                let subgraphs: Vec<(dekg_kg::Subgraph, dekg_kg::RelationId)> = chunk
                    .iter()
                    .map(|t| (extractor.extract(t.head, t.tail, None), t.rel))
                    .collect();
                let items: Vec<(&dekg_kg::Subgraph, dekg_kg::RelationId)> =
                    subgraphs.iter().map(|(sg, r)| (sg, *r)).collect();
                match self.scoring_path {
                    ScoringPath::Inference => {
                        self.gsm.score_subgraphs_inference(&self.params, &items)
                    }
                    ScoringPath::TapeReference => {
                        self.gsm.score_subgraphs_eval(&self.params, &items)
                    }
                }
            })
            .collect();
        let mut out = Vec::with_capacity(triples.len());
        for (chunk_i, tpo) in tpo_chunks.into_iter().enumerate() {
            for (j, s) in tpo.into_iter().enumerate() {
                out.push(sem[chunk_i * CHUNK + j] + s);
            }
        }
        out
    }
}

impl LinkPredictor for DekgIlp {
    fn name(&self) -> &'static str {
        self.cfg.ablation.variant_name()
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        self.score_internal(graph, triples)
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for DekgIlp {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        crate::train::train(self, dataset, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        generate(&SynthConfig::for_profile(profile, 11))
    }

    #[test]
    fn construction_and_scoring() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let scores = model.score_batch(&graph, &d.test_bridging[..3.min(d.test_bridging.len())]);
        assert_eq!(scores.len(), 3.min(d.test_bridging.len()));
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scoring_is_deterministic() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let batch = &d.test_enclosing[..2.min(d.test_enclosing.len())];
        assert_eq!(model.score_batch(&graph, batch), model.score_batch(&graph, batch));
    }

    #[test]
    fn scoring_paths_are_bitwise_identical() {
        // Train briefly so parameters are away from init, then check
        // the forward-only path against the tape on real test links.
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let batch: Vec<Triple> =
            d.test_enclosing.iter().chain(&d.test_bridging).copied().take(12).collect();

        assert_eq!(model.scoring_path(), ScoringPath::Inference);
        let fast = model.score_batch(&graph, &batch);
        model.set_scoring_path(ScoringPath::TapeReference);
        let tape = model.score_batch(&graph, &batch);
        assert_eq!(fast, tape);
    }

    #[test]
    fn ablation_r_has_no_clrm() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg =
            DekgIlpConfig { ablation: Ablation::without_semantic(), ..DekgIlpConfig::quick() };
        let model = DekgIlp::new(cfg, &d, &mut rng);
        assert!(model.clrm().is_none());
        assert_eq!(model.name(), "DEKG-ILP-R");
        // Still scores (topological only).
        let graph = InferenceGraph::from_dataset(&d);
        let s = model.score(&graph, &d.test_bridging[0]);
        assert!(s.is_finite());
    }

    #[test]
    fn parameter_count_components() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let full = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let cfg_r =
            DekgIlpConfig { ablation: Ablation::without_semantic(), ..DekgIlpConfig::quick() };
        let no_sem = DekgIlp::new(cfg_r, &d, &mut rng2);
        // CLRM adds exactly 2·|R|·d parameters.
        let expected_extra = 2 * d.num_relations * full.config().dim;
        assert_eq!(full.num_parameters(), no_sem.num_parameters() + expected_extra);
    }

    #[test]
    fn empty_batch_is_fine() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        assert!(model.score_batch(&graph, &[]).is_empty());
    }
}
