//! The combined DEKG-ILP model (Eq. 13) and its [`LinkPredictor`] /
//! [`TrainableModel`] implementations.

use crate::clrm::Clrm;
use crate::config::DekgIlpConfig;
use crate::gsm::{Gsm, InferenceWorkspace};
use crate::traits::{InferenceGraph, LinkPredictor, TrainReport, TrainableModel};
use dekg_datasets::DekgDataset;
use dekg_gnn::SubgraphEncoderConfig;
use dekg_kg::{BatchedSubgraphs, DistanceBackend, EntityId, Subgraph, SubgraphExtractor, Triple};
use dekg_tensor::{Graph, ParamStore};
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Which GSM implementation evaluation scoring runs through.
///
/// All paths produce bitwise-identical scores (a tested invariant);
/// training always uses the tape, since it needs gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringPath {
    /// The batched candidate-ranking engine — the default. Detects the
    /// ranking-query structure of a batch (shared head, tail, or
    /// endpoint pair), reuses the fixed endpoint's BFS across
    /// candidates, packs candidate subgraphs block-diagonally and runs
    /// the forward-only kernels over the pack (see
    /// [`Gsm::score_subgraphs_batched`]). Falls back to per-candidate
    /// [`ScoringPath::Inference`] scoring for batches with no shared
    /// structure.
    #[default]
    Batched,
    /// Forward-only kernels, one candidate at a time — no autograd
    /// tape, no packing.
    Inference,
    /// Score through the autograd tape
    /// ([`Gsm::score_subgraphs_eval`]) — the seed pipeline, kept as the
    /// baseline the perf harness measures against.
    TapeReference,
}

impl ScoringPath {
    /// Parses a CLI-friendly name (`batched`, `per-candidate`, `tape`).
    pub fn parse(s: &str) -> Option<ScoringPath> {
        match s {
            "batched" => Some(ScoringPath::Batched),
            "per-candidate" | "inference" => Some(ScoringPath::Inference),
            "tape" => Some(ScoringPath::TapeReference),
            _ => None,
        }
    }
}

/// The structure [`ScoringPath::Batched`] detects in a score batch.
/// Ranking queries produced by the eval protocol always share the
/// non-predicted slots: `[truth, candidates…]` of a tail query share
/// the head, of a head query the tail, of a relation query both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryShape {
    /// All triples share head *and* tail — one extraction serves all.
    FixedPair,
    /// All triples share the head; candidates vary the tail.
    FixedHead,
    /// All triples share the tail; candidates vary the head.
    FixedTail,
    /// No shared endpoint (training probes, ad-hoc batches).
    Mixed,
}

impl QueryShape {
    fn detect(triples: &[Triple]) -> QueryShape {
        let h0 = triples[0].head;
        let t0 = triples[0].tail;
        let all_h = triples.iter().all(|t| t.head == h0);
        let all_t = triples.iter().all(|t| t.tail == t0);
        match (all_h, all_t) {
            (true, true) => QueryShape::FixedPair,
            (true, false) => QueryShape::FixedHead,
            (false, true) => QueryShape::FixedTail,
            (false, false) => QueryShape::Mixed,
        }
    }
}

/// Handles for the batched-engine metrics. `batch_nodes` observes the
/// packed node total once per scored query (summed across chunks, so
/// the recorded value is invariant to the batch-size knob and thread
/// count); the cache counters tally per-candidate BFS reuse.
struct BatchedObs {
    bfs_cache_hits: dekg_obs::metrics::Counter,
    bfs_cache_misses: dekg_obs::metrics::Counter,
    batch_nodes: dekg_obs::metrics::Histogram,
}

fn batched_obs() -> &'static BatchedObs {
    static OBS: OnceLock<BatchedObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = dekg_obs::metrics::global();
        BatchedObs {
            bfs_cache_hits: reg.counter("dekg_eval_bfs_cache_hits_total"),
            bfs_cache_misses: reg.counter("dekg_eval_bfs_cache_misses_total"),
            batch_nodes: reg
                .histogram("dekg_eval_batch_nodes", &[16, 64, 256, 1024, 4096, 16384, 65536]),
        }
    })
}

thread_local! {
    /// Per-worker scoring workspace: rayon pool threads persist across
    /// queries, so steady-state batched scoring is allocation-free.
    static WORKSPACE: RefCell<InferenceWorkspace> = RefCell::new(InferenceWorkspace::new());
}

/// DEKG-ILP: CLRM ⊕ GSM.
///
/// Construct with [`DekgIlp::new`], train with
/// [`TrainableModel::fit`], score with [`LinkPredictor::score_batch`].
/// Ablation variants are selected through
/// [`DekgIlpConfig::ablation`].
#[derive(Debug)]
pub struct DekgIlp {
    cfg: DekgIlpConfig,
    params: ParamStore,
    /// `None` under the `-R` ablation (no semantic module at all).
    clrm: Option<Clrm>,
    gsm: Gsm,
    num_relations: usize,
    /// Extraction implementation — runtime state, not a hyperparameter:
    /// both backends produce bit-identical subgraphs, so it is kept out
    /// of the serialized config (checkpoint `.json` stays stable).
    distance_backend: DistanceBackend,
    /// GSM scoring implementation — runtime state like the extraction
    /// backend, and kept out of the config for the same reason.
    scoring_path: ScoringPath,
    /// Candidates packed per block-diagonal batch on the
    /// [`ScoringPath::Batched`] path. Scores are bitwise-invariant to
    /// this knob (a tested invariant); it only trades peak memory
    /// against packing amortization.
    eval_batch: usize,
}

impl DekgIlp {
    /// Allocates a model sized for `dataset`'s relation space.
    ///
    /// # Panics
    /// If the config fails [`DekgIlpConfig::validate`].
    pub fn new(cfg: DekgIlpConfig, dataset: &DekgDataset, mut rng: &mut dyn RngCore) -> Self {
        cfg.validate();
        let num_relations = dataset.num_relations;
        let mut params = ParamStore::new();
        let clrm = cfg
            .ablation
            .use_semantic
            .then(|| Clrm::new(num_relations, cfg.dim, "clrm", &mut params, &mut rng));
        let gsm = Gsm::new(
            SubgraphEncoderConfig {
                num_relations,
                hops: cfg.hops,
                dim: cfg.dim,
                layers: cfg.gnn_layers,
                attn_dim: cfg.attn_dim,
                edge_dropout: cfg.edge_dropout,
                labeling: cfg.labeling_mode(),
                num_bases: cfg.num_bases,
            },
            "gsm",
            &mut params,
            &mut rng,
        );
        DekgIlp {
            cfg,
            params,
            clrm,
            gsm,
            num_relations,
            distance_backend: DistanceBackend::default(),
            scoring_path: ScoringPath::default(),
            eval_batch: 64,
        }
    }

    /// The subgraph-extraction backend scoring runs on.
    pub fn distance_backend(&self) -> DistanceBackend {
        self.distance_backend
    }

    /// Switches the extraction backend. [`DistanceBackend::DenseReference`]
    /// is the seed implementation, kept so the perf harness can measure
    /// the sparse backend against an identical-output baseline.
    pub fn set_distance_backend(&mut self, backend: DistanceBackend) {
        self.distance_backend = backend;
    }

    /// The GSM implementation evaluation scoring runs through.
    pub fn scoring_path(&self) -> ScoringPath {
        self.scoring_path
    }

    /// Switches the GSM scoring implementation.
    /// [`ScoringPath::TapeReference`] is the seed pipeline, kept so the
    /// perf harness can measure the forward-only path against an
    /// identical-output baseline.
    pub fn set_scoring_path(&mut self, path: ScoringPath) {
        self.scoring_path = path;
    }

    /// Candidates packed per batch on the [`ScoringPath::Batched`] path.
    pub fn eval_batch(&self) -> usize {
        self.eval_batch
    }

    /// Scores a pre-packed batch through the GSM into a caller-owned
    /// workspace — the batched engine's inner loop with the extraction,
    /// packing and thread-dispatch layers peeled off. This is the entry
    /// point the allocation sanitizer drives (`perf --alloc-check`):
    /// once `ws` and `out` are warm, repeated calls must not touch the
    /// heap. Scores match [`ScoringPath::Batched`] bitwise.
    pub fn score_packed(
        &self,
        batch: &BatchedSubgraphs<'_>,
        rels: &[dekg_kg::RelationId],
        ws: &mut crate::gsm::InferenceWorkspace,
        out: &mut Vec<f32>,
    ) {
        self.gsm.score_subgraphs_batched(&self.params, batch, rels, ws, out);
    }

    /// Sets the batched-path packing size. Clamped to at least 1.
    /// Scores do not depend on this value — only peak memory and
    /// parallel grain do.
    pub fn set_eval_batch(&mut self, batch: usize) {
        self.eval_batch = batch.max(1);
    }

    /// The model configuration.
    pub fn config(&self) -> &DekgIlpConfig {
        &self.cfg
    }

    /// Mutable configuration access.
    ///
    /// Structural fields (dim, layers, hops, ablation) must not change
    /// after construction — the parameters are already allocated; the
    /// training-schedule fields (epochs, lr, σ, …) may. Used by
    /// [`crate::train::train_with_validation`] to run epoch chunks.
    pub fn config_mut(&mut self) -> &mut DekgIlpConfig {
        &mut self.cfg
    }

    /// The parameter store (for checkpointing via `dekg_tensor::serialize`).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter access (training, checkpoint restore).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// The CLRM module, when the semantic branch is enabled.
    pub fn clrm(&self) -> Option<&Clrm> {
        self.clrm.as_ref()
    }

    /// The GSM module.
    pub fn gsm(&self) -> &Gsm {
        &self.gsm
    }

    /// Relation-space size the model was built for.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Writes the trained parameters to a binary checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, dekg_tensor::serialize::encode(&self.params))
    }

    /// Restores parameters from a checkpoint produced by
    /// [`DekgIlp::save_checkpoint`] on a model with the same
    /// configuration and relation space.
    ///
    /// # Errors
    /// IO failures or a corrupt/incompatible checkpoint.
    ///
    /// # Panics
    /// If the checkpoint's parameter set does not match this model's
    /// (different config/ablation) — mixing checkpoints across shapes
    /// is a programming error, not a runtime condition.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
        let bytes = std::fs::read(path)?;
        let restored = dekg_tensor::serialize::decode(&bytes)?;
        assert_eq!(
            restored.len(),
            self.params.len(),
            "checkpoint has {} parameters, model expects {}",
            restored.len(),
            self.params.len()
        );
        for (_, name, value) in restored.iter() {
            let id = self
                .params
                .id_of(name)
                .unwrap_or_else(|| panic!("checkpoint parameter {name:?} unknown to this model"));
            assert!(
                self.params.get(id).shape().same_as(value.shape()),
                "shape mismatch for {name:?}"
            );
            *self.params.get_mut(id) = value.clone();
        }
        Ok(())
    }

    /// Rebuilds a trained model from a checkpoint pair: `<path>` (the
    /// binary weights written by [`DekgIlp::save_checkpoint`]) plus
    /// `<path>.json` (the [`DekgIlpConfig`] the training CLI writes
    /// alongside). The architecture is reconstructed from the config —
    /// the init RNG seed is irrelevant since every parameter is
    /// overwritten by the checkpoint — so two restores of the same pair
    /// are bitwise-identical models. This is the one entry point every
    /// consumer of a checkpoint shares (`dekg evaluate`, `dekg predict`,
    /// the `dekg serve` daemon's hot-swap path).
    ///
    /// # Errors
    /// IO failures, a malformed config, or a corrupt checkpoint.
    ///
    /// # Panics
    /// If the weights file does not match the architecture its own
    /// `.json` describes (a mismatched pair is a programming error).
    pub fn restore(
        path: &str,
        dataset: &DekgDataset,
    ) -> Result<DekgIlp, Box<dyn std::error::Error + Send + Sync>> {
        let cfg_path = format!("{path}.json");
        let cfg_text = std::fs::read_to_string(&cfg_path)
            .map_err(|e| format!("reading model config {cfg_path}: {e}"))?;
        let cfg: DekgIlpConfig = serde_json::from_str(&cfg_text)
            .map_err(|e| format!("parsing model config {cfg_path}: {e}"))?;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(cfg, dataset, &mut rng);
        model.load_checkpoint(path)?;
        Ok(model)
    }

    /// Scores triples with both modules on a fresh tape (no dropout).
    ///
    /// Exposed for the training loop and explain tooling; external users
    /// go through [`LinkPredictor::score_batch`].
    pub(crate) fn score_internal(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        if triples.is_empty() {
            return Vec::new();
        }
        let _span = dekg_obs::span!("score_batch");
        // φ_sem: one tape over the whole batch.
        let mut sem = vec![0.0f32; triples.len()];
        if let Some(clrm) = &self.clrm {
            let mut g = Graph::new();
            let s = clrm.score(&mut g, &self.params, &graph.tables, triples);
            sem.copy_from_slice(g.value(s).data());
        }

        // φ_tpo: path-dependent. The batched engine exploits the
        // ranking-query structure of the batch; the per-candidate
        // paths score each triple's subgraph independently.
        let extractor =
            SubgraphExtractor::new(&graph.adjacency, self.cfg.hops, self.cfg.extraction_mode())
                .with_backend(self.distance_backend);
        let tpo = match self.scoring_path {
            ScoringPath::Batched => self.tpo_batched(&extractor, triples),
            ScoringPath::Inference | ScoringPath::TapeReference => {
                self.tpo_per_candidate(&extractor, triples, self.scoring_path)
            }
        };
        sem.iter().zip(&tpo).map(|(s, t)| s + t).collect()
    }

    /// φ_tpo via per-candidate extraction and scoring — the
    /// [`ScoringPath::Inference`] / [`ScoringPath::TapeReference`]
    /// engines, and the fallback for structure-free batches.
    ///
    /// Chunks bound tape memory on large candidate sets. Chunks are
    /// independent — each gets its own tape and mount — so they fan out
    /// over the ambient rayon thread count; scoring is a pure function
    /// of (params, subgraph), and the ordered collect makes the result
    /// identical to the serial loop.
    fn tpo_per_candidate(
        &self,
        extractor: &SubgraphExtractor<'_>,
        triples: &[Triple],
        path: ScoringPath,
    ) -> Vec<f32> {
        const CHUNK: usize = 64;
        use rayon::prelude::*;
        let chunks: Vec<&[Triple]> = triples.chunks(CHUNK).collect();
        let tpo_chunks: Vec<Vec<f32>> = chunks
            .par_iter()
            .map(|chunk| {
                let subgraphs: Vec<(Subgraph, dekg_kg::RelationId)> = chunk
                    .iter()
                    .map(|t| (extractor.extract(t.head, t.tail, None), t.rel))
                    .collect();
                let items: Vec<(&Subgraph, dekg_kg::RelationId)> =
                    subgraphs.iter().map(|(sg, r)| (sg, *r)).collect();
                match path {
                    ScoringPath::Inference => {
                        self.gsm.score_subgraphs_inference(&self.params, &items)
                    }
                    ScoringPath::TapeReference | ScoringPath::Batched => {
                        self.gsm.score_subgraphs_eval(&self.params, &items)
                    }
                }
            })
            .collect();
        tpo_chunks.into_iter().flatten().collect()
    }

    /// φ_tpo via the batched candidate-ranking engine.
    ///
    /// Detects the query shape, reuses the fixed endpoint's truncated
    /// BFS across candidates, packs candidate subgraphs
    /// block-diagonally (`eval_batch` per pack) and scores each pack
    /// with one forward pass through a reusable workspace. Every
    /// decision preserves bitwise equality with the per-candidate path:
    /// cached BFS reuse is gated on the exact-equality condition
    /// ([`dekg_kg::QueryExtractionCache`]), the block-diagonal kernels
    /// preserve per-subgraph accumulation order, and packs are
    /// independent so chunking/threading cannot reorder float sums.
    fn tpo_batched(&self, extractor: &SubgraphExtractor<'_>, triples: &[Triple]) -> Vec<f32> {
        use rayon::prelude::*;
        let shape = QueryShape::detect(triples);
        if shape == QueryShape::Mixed {
            // No shared endpoint to cache or exploit: fall back to the
            // per-candidate forward-only engine.
            return self.tpo_per_candidate(extractor, triples, ScoringPath::Inference);
        }
        if shape == QueryShape::FixedPair {
            // Relation query (h, ?, t): one extraction and one encode
            // serve every candidate relation.
            let sg = extractor.extract(triples[0].head, triples[0].tail, None);
            let rels: Vec<dekg_kg::RelationId> = triples.iter().map(|t| t.rel).collect();
            batched_obs().batch_nodes.observe(sg.num_nodes() as u64);
            return WORKSPACE.with(|ws| {
                let mut ws = ws.borrow_mut();
                let mut out = Vec::with_capacity(triples.len());
                self.gsm.score_subgraph_multi_rel(&self.params, &sg, &rels, &mut ws, &mut out);
                out
            });
        }
        // Entity query: one endpoint is fixed across the batch — BFS it
        // once, then fan packs out over the ambient rayon pool.
        let fixed: EntityId = match shape {
            QueryShape::FixedHead => triples[0].head,
            QueryShape::FixedTail => triples[0].tail,
            _ => unreachable!(),
        };
        let cache = extractor.cache_source(fixed);
        let chunks: Vec<&[Triple]> = triples.chunks(self.eval_batch.max(1)).collect();
        let packs: Vec<(Vec<f32>, usize, u64, u64)> = chunks
            .par_iter()
            .map(|chunk| {
                let mut hits = 0u64;
                let mut misses = 0u64;
                let subgraphs: Vec<Subgraph> = chunk
                    .iter()
                    .map(|t| {
                        let (sg, hit) =
                            extractor.extract_with_cached_source(&cache, t.head, t.tail, None);
                        if hit {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        sg
                    })
                    .collect();
                let batch = BatchedSubgraphs::pack(&subgraphs);
                let rels: Vec<dekg_kg::RelationId> = chunk.iter().map(|t| t.rel).collect();
                let nodes = batch.total_nodes();
                let scores = WORKSPACE.with(|ws| {
                    let mut ws = ws.borrow_mut();
                    let mut out = Vec::with_capacity(chunk.len());
                    self.gsm.score_subgraphs_batched(
                        &self.params,
                        &batch,
                        &rels,
                        &mut ws,
                        &mut out,
                    );
                    out
                });
                (scores, nodes, hits, misses)
            })
            .collect();
        // Record metrics once per query from pack-level sums, so the
        // snapshot is invariant to both `eval_batch` and thread count.
        let obs = batched_obs();
        obs.batch_nodes.observe(packs.iter().map(|p| p.1 as u64).sum());
        obs.bfs_cache_hits.add(packs.iter().map(|p| p.2).sum());
        obs.bfs_cache_misses.add(packs.iter().map(|p| p.3).sum());
        packs.into_iter().flat_map(|p| p.0).collect()
    }
}

impl LinkPredictor for DekgIlp {
    fn name(&self) -> &'static str {
        self.cfg.ablation.variant_name()
    }

    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        self.score_internal(graph, triples)
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

impl TrainableModel for DekgIlp {
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
        crate::train::train(self, dataset, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        generate(&SynthConfig::for_profile(profile, 11))
    }

    #[test]
    fn construction_and_scoring() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let scores = model.score_batch(&graph, &d.test_bridging[..3.min(d.test_bridging.len())]);
        assert_eq!(scores.len(), 3.min(d.test_bridging.len()));
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scoring_is_deterministic() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let batch = &d.test_enclosing[..2.min(d.test_enclosing.len())];
        assert_eq!(model.score_batch(&graph, batch), model.score_batch(&graph, batch));
    }

    #[test]
    fn scoring_paths_are_bitwise_identical() {
        // Train briefly so parameters are away from init, then check
        // the forward-only path against the tape on real test links.
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let batch: Vec<Triple> =
            d.test_enclosing.iter().chain(&d.test_bridging).copied().take(12).collect();

        assert_eq!(model.scoring_path(), ScoringPath::Batched);
        let batched = model.score_batch(&graph, &batch);
        model.set_scoring_path(ScoringPath::Inference);
        let fast = model.score_batch(&graph, &batch);
        model.set_scoring_path(ScoringPath::TapeReference);
        let tape = model.score_batch(&graph, &batch);
        assert_eq!(batched, fast);
        assert_eq!(fast, tape);
    }

    #[test]
    fn batched_path_matches_per_candidate_on_ranking_shapes() {
        // Ranking-shaped batches exercise the FixedHead / FixedTail /
        // FixedPair engines; scores must be bitwise identical to the
        // per-candidate path for every shape and any eval_batch.
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let cfg = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        model.fit(&d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        let t0 = d.test_bridging[0];
        let n = d.num_entities() as u32;
        let tail_query: Vec<Triple> = (0..20u32)
            .map(|i| Triple { head: t0.head, rel: t0.rel, tail: EntityId((i * 7) % n) })
            .collect();
        let head_query: Vec<Triple> = (0..20u32)
            .map(|i| Triple { head: EntityId((i * 5) % n), rel: t0.rel, tail: t0.tail })
            .collect();
        let rel_query: Vec<Triple> = (0..d.num_relations)
            .map(|r| Triple { head: t0.head, rel: dekg_kg::RelationId(r as u32), tail: t0.tail })
            .collect();
        for batch in [&tail_query, &head_query, &rel_query] {
            for eb in [1usize, 3, 64] {
                model.set_eval_batch(eb);
                model.set_scoring_path(ScoringPath::Batched);
                let batched = model.score_batch(&graph, batch);
                model.set_scoring_path(ScoringPath::Inference);
                let per_candidate = model.score_batch(&graph, batch);
                assert_eq!(batched, per_candidate);
            }
        }
    }

    #[test]
    fn ablation_r_has_no_clrm() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg =
            DekgIlpConfig { ablation: Ablation::without_semantic(), ..DekgIlpConfig::quick() };
        let model = DekgIlp::new(cfg, &d, &mut rng);
        assert!(model.clrm().is_none());
        assert_eq!(model.name(), "DEKG-ILP-R");
        // Still scores (topological only).
        let graph = InferenceGraph::from_dataset(&d);
        let s = model.score(&graph, &d.test_bridging[0]);
        assert!(s.is_finite());
    }

    #[test]
    fn parameter_count_components() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let full = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let cfg_r =
            DekgIlpConfig { ablation: Ablation::without_semantic(), ..DekgIlpConfig::quick() };
        let no_sem = DekgIlp::new(cfg_r, &d, &mut rng2);
        // CLRM adds exactly 2·|R|·d parameters.
        let expected_extra = 2 * d.num_relations * full.config().dim;
        assert_eq!(full.num_parameters(), no_sem.num_parameters() + expected_extra);
    }

    #[test]
    fn empty_batch_is_fine() {
        let d = tiny_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);
        assert!(model.score_batch(&graph, &[]).is_empty());
    }
}
