//! The model interface shared by DEKG-ILP and every baseline.

use dekg_datasets::DekgDataset;
use dekg_kg::{Adjacency, ComponentTable, Triple, TripleStore};
use rand::RngCore;

/// The immutable evaluation-time view of a dataset: the union graph
/// `G ∪ G'` plus the derived structures every model family needs
/// (adjacency for subgraph methods, component tables for CLRM).
///
/// Build it once per dataset and share it across models — derivations
/// are not free.
#[derive(Debug)]
pub struct InferenceGraph {
    /// Total entity universe size `|E| + |E'|`.
    pub num_entities: usize,
    /// Shared relation space size `|R|`.
    pub num_relations: usize,
    /// Entities with id below this belong to the original KG.
    pub num_original_entities: usize,
    /// All observable triples: `G ∪ G'`.
    pub store: TripleStore,
    /// Undirected adjacency over `store`.
    pub adjacency: Adjacency,
    /// Relation-component tables over `store`.
    pub tables: ComponentTable,
}

impl InferenceGraph {
    /// Derives the inference view from a dataset.
    pub fn from_dataset(dataset: &DekgDataset) -> Self {
        let store = dataset.inference_store();
        Self::from_store(
            store,
            dataset.num_entities(),
            dataset.num_relations,
            dataset.num_original_entities,
        )
    }

    /// The training-time view: only the original KG `G` is visible.
    pub fn training_view(dataset: &DekgDataset) -> Self {
        Self::from_store(
            dataset.original.clone(),
            dataset.num_entities(),
            dataset.num_relations,
            dataset.num_original_entities,
        )
    }

    /// Builds the view from an explicit store.
    pub fn from_store(
        store: TripleStore,
        num_entities: usize,
        num_relations: usize,
        num_original_entities: usize,
    ) -> Self {
        let adjacency = Adjacency::from_store(&store, num_entities);
        let tables = ComponentTable::from_store(&store, num_entities, num_relations);
        InferenceGraph {
            num_entities,
            num_relations,
            num_original_entities,
            store,
            adjacency,
            tables,
        }
    }
}

/// A scoring model for KG triples. Higher scores mean "more plausible".
///
/// Implementations must be [`Sync`] so the evaluation harness can fan
/// candidate scoring out across threads; scoring takes `&self` and must
/// not mutate model state.
pub trait LinkPredictor: Sync {
    /// Short model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Scores a batch of candidate triples against the inference graph.
    fn score_batch(&self, graph: &InferenceGraph, triples: &[Triple]) -> Vec<f32>;

    /// Total number of scalar parameters (Fig. 7's parameter complexity).
    fn num_parameters(&self) -> usize;

    /// Scores a single triple (convenience wrapper).
    fn score(&self, graph: &InferenceGraph, triple: &Triple) -> f32 {
        self.score_batch(graph, std::slice::from_ref(triple))[0]
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Mean loss of the first epoch (for "did it learn?" checks).
    pub initial_loss: f32,
    /// Wall-clock seconds spent in `fit`.
    pub seconds: f64,
}

impl TrainReport {
    /// True when the loss decreased over training.
    pub fn improved(&self) -> bool {
        self.final_loss < self.initial_loss
    }
}

/// A model that can be fit on a dataset's original KG.
pub trait TrainableModel: LinkPredictor {
    /// Trains on `dataset.original`, never looking at `G'` or any
    /// held-out link.
    fn fit(&mut self, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
    use dekg_kg::EntityId;

    fn tiny_dataset() -> DekgDataset {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        generate(&SynthConfig::for_profile(profile, 7))
    }

    #[test]
    fn inference_graph_unions_stores() {
        let d = tiny_dataset();
        let g = InferenceGraph::from_dataset(&d);
        assert_eq!(g.store.len(), d.original.len() + d.emerging.len());
        assert_eq!(g.num_entities, d.num_entities());
        assert_eq!(g.num_relations, d.num_relations);
    }

    #[test]
    fn training_view_hides_emerging_graph() {
        let d = tiny_dataset();
        let g = InferenceGraph::training_view(&d);
        assert_eq!(g.store.len(), d.original.len());
        for t in d.emerging.triples() {
            assert!(!g.store.contains(t));
        }
        // Unseen entities exist in the universe but have no edges.
        let unseen = EntityId(d.num_original_entities as u32);
        assert_eq!(g.adjacency.degree(unseen), 0);
        assert!(g.tables.row(unseen).is_empty());
    }

    #[test]
    fn component_tables_cover_emerging_entities() {
        let d = tiny_dataset();
        let g = InferenceGraph::from_dataset(&d);
        // Every G' entity has ≥1 associated relation at inference time.
        for i in d.num_original_entities..d.num_entities() {
            assert!(!g.tables.row(EntityId(i as u32)).is_empty(), "entity {i}");
        }
    }

    #[test]
    fn train_report_improvement() {
        let r = TrainReport { epochs: 3, final_loss: 0.2, initial_loss: 1.0, seconds: 0.5 };
        assert!(r.improved());
        let r2 = TrainReport { final_loss: 2.0, ..r };
        assert!(!r2.improved());
    }
}
