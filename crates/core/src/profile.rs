//! `dekg profile` — attributed hot-op profiling of the production tapes.
//!
//! The flat spans from `dekg-obs` say *that* tape execution is slow;
//! this module says *where*: it arms the per-op kernel profiler in
//! `dekg-tensor` ([`dekg_tensor::prof`]), runs the exact Eq. 15
//! training tape (or the mounted evaluation tape) on a small model, and
//! reports a hot-op table — wall time, call count and bytes moved per
//! Op variant — plus per-tape-structure rows keyed by the tapecheck
//! structure key, so repeated batches of the same shape fold together.
//!
//! Two invariants the profile itself verifies:
//!
//! * **Attribution** — the summed per-op kernel time must account for
//!   the bulk of the measured tape-execution bracket ([`ProfileReport`]
//!   exposes the ratio as [`ProfileReport::coverage`]; the perf harness
//!   asserts ≥ 90%). Batch *preparation* (negative sampling, subgraph
//!   extraction) runs outside the bracket via
//!   [`crate::train::prepare_batch`], so only recording + backward is
//!   measured.
//! * **Determinism** — profiling observes and never participates:
//!   enabling it cannot change any loss or score bit (asserted in the
//!   perf harness and in this module's tests).

use crate::model::DekgIlp;
use crate::train::{prepare_batch, record_prepared};
use crate::traits::InferenceGraph;
use dekg_datasets::{DekgDataset, NegativeSampler};
use dekg_kg::{EntityId, Subgraph, SubgraphExtractor, Triple};
use dekg_tensor::{prof, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

/// Positives per profiled training batch.
const BATCH: usize = 8;

/// A profiling model sized so kernel work (not tape bookkeeping)
/// dominates — `dim` 96 where the check harness uses 8. The dim²
/// matmul cost swamps both the per-node recording glue (which is what
/// lets the perf harness hold the ≥90% attribution-coverage bar) and
/// the profiler's own two clock reads per op (its <5% overhead bar).
fn profile_config() -> crate::config::DekgIlpConfig {
    crate::config::DekgIlpConfig {
        dim: 96,
        num_contrastive: 2,
        gnn_layers: 2,
        attn_dim: 8,
        ..crate::config::DekgIlpConfig::quick()
    }
}

/// The outcome of a [`profile_train`] / [`profile_eval`] run: the
/// sorted hot-op table, the folded per-structure tape rows, and the
/// bracketing span measurement the attribution is judged against.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-op rows, hottest first (see [`dekg_tensor::OpProfile`]).
    pub ops: Vec<dekg_tensor::OpProfile>,
    /// Per-tape-structure rows, folded by structure key.
    pub tapes: Vec<dekg_tensor::TapeProfile>,
    /// Total wall-clock seconds inside the tape-execution bracket
    /// (wall-clock measurement — outside the determinism contract).
    pub span_seconds: f64,
    /// Tape executions measured.
    pub batches: usize,
    /// Total tape nodes across those executions.
    pub nodes: u64,
}

impl ProfileReport {
    /// Summed per-op kernel seconds (forward + backward).
    pub fn attributed_seconds(&self) -> f64 {
        self.ops.iter().map(dekg_tensor::OpProfile::total_seconds).sum()
    }

    /// Fraction of the measured bracket the per-op rows account for.
    /// The acceptance bar for `dekg profile train` is ≥ 0.90.
    pub fn coverage(&self) -> f64 {
        if self.span_seconds > 0.0 {
            self.attributed_seconds() / self.span_seconds
        } else {
            0.0
        }
    }

    /// Renders the hot-op table and tape-structure rows as aligned
    /// plain text (the `dekg profile` output).
    pub fn render(&self) -> String {
        let attributed = self.attributed_seconds();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profiled {} tape execution(s), {} node(s): {:.1} ms measured, {:.1} ms attributed ({:.1}% coverage)",
            self.batches,
            self.nodes,
            self.span_seconds * 1e3,
            attributed * 1e3,
            self.coverage() * 100.0,
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>10} {:>10} {:>10} {:>7} {:>9}",
            "op", "calls", "fwd ms", "bwd ms", "total ms", "share", "MB moved"
        );
        for op in &self.ops {
            let share = if attributed > 0.0 { op.total_seconds() / attributed } else { 0.0 };
            let mb = (op.forward_bytes + op.backward_bytes) as f64 / 1e6;
            let _ = writeln!(
                out,
                "{:<14} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>6.1}% {:>9.2}",
                op.op,
                op.total_calls(),
                op.forward_seconds * 1e3,
                op.backward_seconds * 1e3,
                op.total_seconds() * 1e3,
                share * 100.0,
                mb,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "tape structures (folded by tapecheck structure key):");
        for t in &self.tapes {
            let _ = writeln!(
                out,
                "  key {:016x}  executions {:>4}  nodes {:>8}  {:>9.1} ms",
                t.key,
                t.executions,
                t.nodes,
                t.seconds * 1e3,
            );
        }
        out
    }
}

/// Publishes a snapshot's hot-op rows to the global metrics registry
/// as `dekg_tape_op_seconds{op=...,phase=fwd|bwd}` gauges (wall-clock;
/// outside the determinism contract per the `seconds` naming rule) and
/// `dekg_tape_op_calls_total{...}` counters (deterministic).
fn export_metrics(ops: &[dekg_tensor::OpProfile]) {
    let reg = dekg_obs::metrics::global();
    for op in ops {
        reg.gauge(&format!("dekg_tape_op_seconds{{op=\"{}\",phase=\"fwd\"}}", op.op))
            .set(op.forward_seconds);
        reg.gauge(&format!("dekg_tape_op_seconds{{op=\"{}\",phase=\"bwd\"}}", op.op))
            .set(op.backward_seconds);
        reg.counter(&format!("dekg_tape_op_calls_total{{op=\"{}\",phase=\"fwd\"}}", op.op))
            .add(op.forward_calls);
        reg.counter(&format!("dekg_tape_op_calls_total{{op=\"{}\",phase=\"bwd\"}}", op.op))
            .add(op.backward_calls);
    }
}

/// Profiles `batches` executions of the production Eq. 15 training
/// tape (record + backward) on a fresh profiling-sized model.
///
/// Batches rotate through `distinct` structurally distinct shapes, so
/// the per-structure rows demonstrate folding: `batches` executions
/// collapse to at most `distinct` keys. Preparation (negative
/// sampling, extraction) happens outside the timed bracket.
///
/// # Panics
/// When `batches` or `distinct` is zero or the dataset has no triples.
pub fn profile_train(
    dataset: &DekgDataset,
    seed: u64,
    batches: usize,
    distinct: usize,
) -> ProfileReport {
    assert!(batches > 0 && distinct > 0, "profile_train needs batches > 0 and distinct > 0");
    let triples = dataset.original.triples();
    assert!(!triples.is_empty(), "profile_train needs a non-empty original KG");

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(profile_config(), dataset, &mut rng);
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);

    prof::reset();
    prof::set_enabled(true);
    let mut span_seconds = 0.0f64;
    let mut nodes = 0u64;
    for i in 0..batches {
        let slot = i % distinct;
        // Same slot → same seed and same positives → the same tape
        // structure, so repeated batches fold onto one structure key.
        let mut brng =
            ChaCha8Rng::seed_from_u64(seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let start = (slot * BATCH) % triples.len();
        let batch: Vec<Triple> =
            triples.iter().cycle().skip(start).take(BATCH.min(triples.len())).copied().collect();
        let prepared = prepare_batch(&model, &sampler, &train_graph, &batch, &mut brng);

        let span = dekg_obs::span!("profile_tape_execute");
        let started = Instant::now();
        let mut g = Graph::new();
        let parts = record_prepared(&mut g, &model, dataset, &train_graph, &prepared, &mut brng);
        let grads = g.backward(parts.total);
        let dt = started.elapsed().as_secs_f64();
        drop(span);
        std::hint::black_box(&grads);

        span_seconds += dt;
        nodes += g.len() as u64;
        let key = dekg_tensor::tapecheck::structure_key(
            &g,
            parts.total,
            &parts.observed_vars(),
            Some(model.params()),
        );
        prof::record_tape(key, g.len() as u64, dt);
    }
    prof::set_enabled(false);
    let snap = prof::snapshot();
    export_metrics(&snap.ops);
    ProfileReport { ops: snap.ops, tapes: snap.tapes, span_seconds, batches, nodes }
}

/// One execution of the exact [`profile_train`] workload with the
/// kernel profiler forced on or off, for the perf harness's
/// observer-contract checks: returns the per-batch bracket seconds
/// plus the output bits — every per-batch loss, then every parameter
/// gradient of the final batch. Two runs that differ only in
/// `profiled` must return identical bits (profiling observes, never
/// participates), and their seconds bound the profiler's overhead.
/// Seconds are reported per batch (not summed) so a caller comparing
/// runs can take the minimum per batch across repeats — a scheduler
/// stall then has to hit the *same* batch in *every* repeat to bias
/// the overhead estimate, instead of any batch in any repeat.
///
/// Leaves the global profiler disabled and does not export metrics.
///
/// # Panics
/// When `batches` or `distinct` is zero or the dataset has no triples.
pub fn profile_train_outputs(
    dataset: &DekgDataset,
    seed: u64,
    batches: usize,
    distinct: usize,
    profiled: bool,
) -> (Vec<f64>, Vec<u32>) {
    assert!(batches > 0 && distinct > 0, "profile_train_outputs needs batches/distinct > 0");
    let triples = dataset.original.triples();
    assert!(!triples.is_empty(), "profile_train_outputs needs a non-empty original KG");

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(profile_config(), dataset, &mut rng);
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);

    prof::reset();
    prof::set_enabled(profiled);
    let mut batch_seconds = Vec::with_capacity(batches);
    let mut bits: Vec<u32> = Vec::new();
    for i in 0..batches {
        let slot = i % distinct;
        let mut brng =
            ChaCha8Rng::seed_from_u64(seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let start = (slot * BATCH) % triples.len();
        let batch: Vec<Triple> =
            triples.iter().cycle().skip(start).take(BATCH.min(triples.len())).copied().collect();
        let prepared = prepare_batch(&model, &sampler, &train_graph, &batch, &mut brng);

        let started = Instant::now();
        let mut g = Graph::new();
        let parts = record_prepared(&mut g, &model, dataset, &train_graph, &prepared, &mut brng);
        let grads = g.backward(parts.total);
        batch_seconds.push(started.elapsed().as_secs_f64());

        bits.push(g.value(parts.total).item().to_bits());
        if i == batches - 1 {
            for (id, _, _) in model.params().iter() {
                if let Some(t) = grads.get(id) {
                    bits.extend(t.data().iter().map(|x| x.to_bits()));
                }
            }
        }
    }
    prof::set_enabled(false);
    prof::reset();
    (batch_seconds, bits)
}

/// Profiles `queries` mounted evaluation tapes (forward only — the
/// `score_subgraphs_eval` path), each scoring one true link plus
/// `candidates` tail corruptions. Extraction happens outside the timed
/// bracket.
///
/// # Panics
/// When `queries` or `candidates` is zero or the dataset has no links.
pub fn profile_eval(
    dataset: &DekgDataset,
    seed: u64,
    queries: usize,
    candidates: usize,
) -> ProfileReport {
    assert!(queries > 0 && candidates > 0, "profile_eval needs queries > 0 and candidates > 0");
    let links: &[Triple] = if dataset.test_enclosing.is_empty() {
        dataset.original.triples()
    } else {
        &dataset.test_enclosing
    };
    assert!(!links.is_empty(), "profile_eval needs at least one link");

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(profile_config(), dataset, &mut rng);
    let graph = InferenceGraph::from_dataset(dataset);
    let cfg = model.config();
    let extractor = SubgraphExtractor::new(&graph.adjacency, cfg.hops, cfg.extraction_mode())
        .with_backend(model.distance_backend());

    prof::reset();
    prof::set_enabled(true);
    let mut span_seconds = 0.0f64;
    let mut nodes = 0u64;
    let mut executions = 0usize;
    for q in 0..queries {
        let truth = links[q % links.len()];
        // The true link plus `candidates` deterministic tail
        // corruptions; score values are irrelevant here, tape shape is.
        let mut batch = vec![(truth.head, truth.tail)];
        for c in 0..candidates {
            let tail = EntityId(((truth.tail.0 as usize + c + 1) % graph.num_entities) as u32);
            batch.push((truth.head, tail));
        }
        let links_spec: Vec<(EntityId, EntityId, Option<Triple>)> =
            batch.iter().map(|&(h, t)| (h, t, None)).collect();
        let subgraphs = extractor.extract_batch(&links_spec);
        let items: Vec<(&Subgraph, dekg_kg::RelationId)> =
            subgraphs.iter().map(|sg| (sg, truth.rel)).collect();

        let span = dekg_obs::span!("profile_tape_execute");
        let started = Instant::now();
        let (g, scores) = model.gsm().record_eval_tape(model.params(), &items);
        let dt = started.elapsed().as_secs_f64();
        drop(span);
        std::hint::black_box(&scores);

        span_seconds += dt;
        nodes += g.len() as u64;
        executions += 1;
        // `candidates > 0` is asserted above, so the batch always
        // scores at least one tail and `scores` is never empty.
        if let Some(&last) = scores.last() {
            let key =
                dekg_tensor::tapecheck::structure_key(&g, last, &scores, Some(model.params()));
            prof::record_tape(key, g.len() as u64, dt);
        }
    }
    prof::set_enabled(false);
    let snap = prof::snapshot();
    export_metrics(&snap.ops);
    ProfileReport { ops: snap.ops, tapes: snap.tapes, span_seconds, batches: executions, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that arm the process-global profiler.
    fn prof_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn train_profile_folds_structures_and_attributes_time() {
        let _guard = prof_lock();
        let d = dekg_datasets::tiny_fixture(1);
        let report = profile_train(&d, 0, 4, 2);
        assert_eq!(report.batches, 4);
        assert!(!report.ops.is_empty(), "hot-op table must not be empty");
        // 4 executions over 2 distinct shapes fold to ≤ 2 keys with 4
        // executions total (calls/bytes are deterministic; seconds are
        // measurement).
        assert!(report.tapes.len() <= 2, "tapes: {:?}", report.tapes);
        assert_eq!(report.tapes.iter().map(|t| t.executions).sum::<u64>(), 4);
        assert!(report.attributed_seconds() > 0.0);
        assert!(report.span_seconds > 0.0);
        // Hot-op table is sorted hottest-first.
        for w in report.ops.windows(2) {
            assert!(w[0].total_seconds() >= w[1].total_seconds());
        }
        // The rendered table mentions the measured coverage and at
        // least one known-hot op.
        let text = report.render();
        assert!(text.contains("coverage"), "{text}");
        assert!(text.contains("Matmul"), "{text}");
        // Metrics were exported under the baked-label naming scheme.
        let rendered = dekg_obs::metrics::global().render_prometheus();
        assert!(
            rendered.contains("dekg_tape_op_calls_total{op=\"Matmul\",phase=\"fwd\"}"),
            "{rendered}"
        );
    }

    #[test]
    fn eval_profile_runs_forward_only() {
        let _guard = prof_lock();
        let d = dekg_datasets::tiny_fixture(2);
        let report = profile_eval(&d, 0, 2, 5);
        assert_eq!(report.batches, 2);
        assert!(!report.ops.is_empty());
        // Forward-only: no backward time anywhere.
        assert!(report.ops.iter().all(|o| o.backward_calls == 0), "{:?}", report.ops);
        assert!(report.attributed_seconds() > 0.0);
    }

    #[test]
    fn profiling_does_not_change_training_results() {
        let _guard = prof_lock();
        let d = dekg_datasets::tiny_fixture(3);
        let (_, off) = profile_train_outputs(&d, 9, 3, 2, false);
        let (_, on) = profile_train_outputs(&d, 9, 3, 2, true);
        assert!(!off.is_empty());
        assert_eq!(off, on, "profiling must not change any loss or gradient bit");
    }

    #[test]
    fn split_batch_path_matches_fused_path() {
        // prepare_batch + record_prepared must consume the RNG stream
        // and build the tape exactly as the fused batch_loss_parts.
        let d = dekg_datasets::tiny_fixture(4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = DekgIlp::new(profile_config(), &d, &mut rng);
        let train_graph = InferenceGraph::training_view(&d);
        let sampler = NegativeSampler::new(0..d.num_original_entities as u32, vec![&d.original]);
        let batch: Vec<Triple> = d.original.triples().iter().copied().take(6).collect();

        let mut rng_a = ChaCha8Rng::seed_from_u64(13);
        let mut g_a = Graph::new();
        let fused = crate::train::batch_loss_parts(
            &mut g_a,
            &model,
            &d,
            &train_graph,
            &sampler,
            &batch,
            &mut rng_a,
        );

        let mut rng_b = ChaCha8Rng::seed_from_u64(13);
        let prepared = prepare_batch(&model, &sampler, &train_graph, &batch, &mut rng_b);
        let mut g_b = Graph::new();
        let split = record_prepared(&mut g_b, &model, &d, &train_graph, &prepared, &mut rng_b);

        assert_eq!(g_a.len(), g_b.len(), "same tape length");
        assert_eq!(
            g_a.value(fused.total).item().to_bits(),
            g_b.value(split.total).item().to_bits(),
            "bitwise-identical loss"
        );
    }
}
