//! Case-study tooling for Fig. 8: extracting the semantic and
//! topological endpoint embeddings of a link and reshaping them into
//! heat-map matrices.
//!
//! The paper concatenates the two 32-d endpoint embeddings of each
//! module and resizes the 64 values into an 8×8 matrix; high absolute
//! activation in the semantic map versus a near-zero topological map is
//! the visual signature of a bridging link.

use crate::model::DekgIlp;
use crate::traits::InferenceGraph;
use dekg_kg::{SubgraphExtractor, Triple};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The per-module endpoint embeddings for one link.
#[derive(Debug, Clone)]
pub struct LinkExplanation {
    /// CLRM embedding of the head (`e_i`), empty under `-R`.
    pub semantic_head: Vec<f32>,
    /// CLRM embedding of the tail (`e_j`).
    pub semantic_tail: Vec<f32>,
    /// GSM embedding of the head (`h_i^L`).
    pub topological_head: Vec<f32>,
    /// GSM embedding of the tail (`h_j^L`).
    pub topological_tail: Vec<f32>,
}

impl LinkExplanation {
    /// The semantic heat map: `e_i ⊕ e_j` reshaped to `rows × cols`.
    pub fn semantic_heatmap(&self, rows: usize, cols: usize) -> Vec<Vec<f32>> {
        heatmap(&self.semantic_head, &self.semantic_tail, rows, cols)
    }

    /// The topological heat map: `h_i^L ⊕ h_j^L` reshaped.
    pub fn topological_heatmap(&self, rows: usize, cols: usize) -> Vec<Vec<f32>> {
        heatmap(&self.topological_head, &self.topological_tail, rows, cols)
    }

    /// Mean absolute activation of the semantic embeddings.
    pub fn semantic_activity(&self) -> f32 {
        mean_abs(self.semantic_head.iter().chain(&self.semantic_tail))
    }

    /// Mean absolute activation of the topological embeddings.
    pub fn topological_activity(&self) -> f32 {
        mean_abs(self.topological_head.iter().chain(&self.topological_tail))
    }
}

fn mean_abs<'a>(values: impl Iterator<Item = &'a f32>) -> f32 {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for v in values {
        sum += v.abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f32
    }
}

/// Concatenates two vectors and resizes into a `rows × cols` matrix,
/// zero-padding or truncating as needed (the paper's "concatenate and
/// resize" step).
pub fn heatmap(a: &[f32], b: &[f32], rows: usize, cols: usize) -> Vec<Vec<f32>> {
    let mut flat: Vec<f32> = a.iter().chain(b).copied().collect();
    flat.resize(rows * cols, 0.0);
    flat.chunks(cols).take(rows).map(<[f32]>::to_vec).collect()
}

/// Computes the explanation of one link under a (usually trained) model.
pub fn explain_link(model: &DekgIlp, graph: &InferenceGraph, link: &Triple) -> LinkExplanation {
    let (semantic_head, semantic_tail) = match model.clrm() {
        Some(clrm) => (
            clrm.embed_row(model.params(), graph.tables.row(link.head)),
            clrm.embed_row(model.params(), graph.tables.row(link.tail)),
        ),
        None => (Vec::new(), Vec::new()),
    };
    let extractor = SubgraphExtractor::new(
        &graph.adjacency,
        model.config().hops,
        model.config().extraction_mode(),
    );
    let sg = extractor.extract(link.head, link.tail, None);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let (topological_head, topological_tail) =
        model.gsm().embed_endpoints(model.params(), &sg, &mut rng);
    LinkExplanation { semantic_head, semantic_tail, topological_head, topological_tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DekgIlpConfig;
    use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};

    #[test]
    fn heatmap_reshapes_and_pads() {
        let m = heatmap(&[1.0, 2.0], &[3.0], 2, 2);
        assert_eq!(m, vec![vec![1.0, 2.0], vec![3.0, 0.0]]);
        let t = heatmap(&[1.0; 10], &[2.0; 10], 2, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].len(), 2);
    }

    #[test]
    fn explanation_of_both_link_classes() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
        let d = generate(&SynthConfig::for_profile(profile, 13));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = DekgIlp::new(DekgIlpConfig::quick(), &d, &mut rng);
        let graph = InferenceGraph::from_dataset(&d);

        let enc = explain_link(&model, &graph, &d.test_enclosing[0]);
        let bri = explain_link(&model, &graph, &d.test_bridging[0]);
        for e in [&enc, &bri] {
            assert_eq!(e.semantic_head.len(), model.config().dim);
            assert_eq!(e.topological_head.len(), model.config().dim);
            assert!(e.semantic_activity().is_finite());
            assert!(e.topological_activity().is_finite());
        }
        // Heat maps have the requested shape.
        let hm = enc.semantic_heatmap(4, 8);
        assert_eq!(hm.len(), 4);
        assert!(hm.iter().all(|r| r.len() == 8));
    }
}
