//! Algorithm 1 — the DEKG-ILP training loop.
//!
//! Per batch of positive triples from the original KG `G`:
//!
//! 1. corrupt each positive into `neg_per_pos` negatives (Eq. 12),
//! 2. score positives and negatives with `φ = φ_sem + φ_tpo`
//!    (Eq. 4 + 11 + 13), extracting training subgraphs from `G` with
//!    the *target edge removed* for positives,
//! 3. compute the margin ranking loss (Eq. 14),
//! 4. add the σ-weighted contrastive loss over the batch's entities
//!    (Eq. 7, sampling via [`crate::clrm::sampling`]),
//! 5. backpropagate, clip, and apply an Adam step.

use crate::clrm::sampling;
use crate::model::DekgIlp;
use crate::traits::{InferenceGraph, TrainReport};
use dekg_datasets::{DekgDataset, NegativeSampler};
use dekg_kg::{EntityId, SubgraphExtractor, Triple};
use dekg_tensor::optim::{Adam, Optimizer};
use dekg_tensor::{Diagnostic, Graph, Severity, Var};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use std::collections::BTreeSet;
use std::time::Instant;

/// Trains `model` on `dataset.original` per its config.
///
/// Only the original KG is touched: subgraphs, component tables and
/// negative candidates all come from `G`.
pub fn train(model: &mut DekgIlp, dataset: &DekgDataset, rng: &mut dyn RngCore) -> TrainReport {
    let mut rng = RngShim(rng);
    let rng = &mut rng;
    let cfg = model.config().clone();
    let started = Instant::now();

    let train_graph = InferenceGraph::training_view(dataset);
    let mut sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    if cfg.bernoulli_negatives {
        sampler = sampler.with_bernoulli(&dataset.original);
    }
    let mut opt = Adam::new(cfg.lr);

    let mut positives: Vec<Triple> = dataset.original.triples().to_vec();
    let mut initial_loss = 0.0f32;
    let mut final_loss = 0.0f32;
    let mut step = 0usize;

    let reg = dekg_obs::metrics::global();
    let steps_total = reg.counter("dekg_train_steps_total");
    let epochs_total = reg.counter("dekg_train_epochs_total");
    let loss_gauge = reg.gauge("dekg_train_loss");
    let grad_norm_gauge = reg.gauge("dekg_train_grad_norm");
    let tape_peak_gauge = reg.gauge("dekg_tape_predicted_peak_bytes");
    let tape_dead_gauge = reg.gauge("dekg_tape_dead_ops");
    let tape_hits_total = reg.counter("dekg_tapecheck_cache_hits_total");
    let tape_misses_total = reg.counter("dekg_tapecheck_cache_misses_total");
    let mut tape_cache = dekg_tensor::TapeCache::new();

    for epoch in 0..cfg.epochs {
        let epoch_started = Instant::now();
        positives.shuffle(rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;

        for batch in positives.chunks(cfg.batch_size) {
            let mut g = Graph::new();
            let parts =
                batch_loss_parts(&mut g, model, dataset, &train_graph, &sampler, batch, rng);
            let loss = parts.total;

            let loss_val = g.value(loss).item();
            debug_assert!(loss_val.is_finite(), "non-finite training loss");

            if cfg.gradcheck_every > 0 && step % cfg.gradcheck_every == 0 {
                let diags = g.diff_check(loss, Some(model.params()));
                for d in &diags {
                    dekg_obs::log_warn!("gradcheck[step {step}]: {d}");
                }
                assert!(
                    diags.iter().all(|d| d.severity != Severity::Error),
                    "interpreter disagrees with kernels at step {step}; training aborted"
                );
            }

            if cfg.tape_report {
                let observed = parts.observed_vars();
                let misses_before = tape_cache.misses();
                let (errors, peak_bytes, dead_ops, findings) = {
                    let report = tape_cache.analyze(&g, loss, &observed, Some(model.params()));
                    let findings: Vec<String> =
                        report.diagnostics.iter().map(ToString::to_string).collect();
                    (
                        report.errors(),
                        report.plan.peak_live_bytes,
                        report.dead_nodes + report.unconsumed_ops.len(),
                        findings,
                    )
                };
                if tape_cache.misses() > misses_before {
                    tape_misses_total.inc();
                    // Fresh structure: surface its findings once.
                    for d in &findings {
                        dekg_obs::log_warn!("tapecheck[step {step}]: {d}");
                    }
                } else {
                    tape_hits_total.inc();
                }
                assert!(
                    errors == 0,
                    "tape static analysis found {errors} error(s) at step {step}; training aborted"
                );
                tape_peak_gauge.set(peak_bytes as f64);
                tape_dead_gauge.set(dead_ops as f64);
            }

            let mut grads = g.backward(loss);
            let grad_norm = grads.clip_global_norm(cfg.grad_clip);
            opt.step(model.params_mut(), &grads);

            steps_total.inc();
            loss_gauge.set(f64::from(loss_val));
            grad_norm_gauge.set(f64::from(grad_norm));
            if dekg_obs::metrics_active() {
                // Forward values are eager — reading the component
                // losses off the tape costs nothing extra.
                let mut event = dekg_obs::Event::new("train_step")
                    .field_u64("epoch", epoch as u64)
                    .field_u64("step", step as u64)
                    .field_f64("loss", f64::from(loss_val))
                    .field_f64("loss_margin", f64::from(g.value(parts.margin).item()));
                if let Some(con) = parts.contrastive {
                    event = event.field_f64("loss_con", f64::from(g.value(con).item()));
                }
                if let Some(sem) = parts.sem_pos_mean {
                    event = event.field_f64("phi_sem_pos", f64::from(g.value(sem).item()));
                }
                event = event
                    .field_f64("phi_tpo_pos", f64::from(g.value(parts.tpo_pos_mean).item()))
                    .field_f64("grad_norm", f64::from(grad_norm))
                    .field_f64("lr", f64::from(opt.learning_rate()));
                event.emit_metrics();
            }
            step += 1;

            epoch_loss += loss_val as f64;
            batches += 1;
        }

        let mean = if batches > 0 { (epoch_loss / batches as f64) as f32 } else { 0.0 };
        if epoch == 0 {
            initial_loss = mean;
        }
        final_loss = mean;
        if cfg.lr_decay < 1.0 {
            let lr = opt.learning_rate() * cfg.lr_decay;
            opt.set_learning_rate(lr);
        }

        epochs_total.inc();
        dekg_obs::log_debug!("epoch {epoch}: mean loss {mean:.6} over {batches} batch(es)");
        if dekg_obs::metrics_active() {
            dekg_obs::Event::new("epoch")
                .field_u64("epoch", epoch as u64)
                .field_f64("mean_loss", f64::from(mean))
                .field_u64("batches", batches as u64)
                .field_f64("epoch_seconds", epoch_started.elapsed().as_secs_f64())
                .emit_metrics();
        }
        if dekg_obs::trace_active() {
            dekg_obs::span::emit_span_event(Some(epoch as u64));
        }
    }

    TrainReport {
        epochs: cfg.epochs,
        final_loss,
        initial_loss,
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Early-stopping settings for [`train_with_validation`].
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Evaluate validation MRR every this many epochs.
    pub eval_every: usize,
    /// Stop after this many consecutive non-improving evaluations.
    pub patience: usize,
    /// Candidates sampled per validation ranking query.
    pub candidates: usize,
    /// Validation links used per evaluation (prefix of `dataset.valid`).
    pub max_links: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig { eval_every: 2, patience: 3, candidates: 10, max_links: 50 }
    }
}

/// The outcome of a validated training run.
#[derive(Debug, Clone)]
pub struct ValidatedTrainReport {
    /// The underlying per-chunk training reports.
    pub train: TrainReport,
    /// Validation MRR trajectory (one entry per evaluation).
    pub valid_mrr: Vec<f64>,
    /// The epoch count actually executed.
    pub epochs_run: usize,
    /// True when training stopped before the configured epoch budget.
    pub stopped_early: bool,
}

/// Trains with periodic validation-MRR evaluation and early stopping,
/// restoring the best-scoring parameters at the end.
///
/// Validation links live inside `G`, so the evaluation uses the
/// training view and never touches `G'` or the test links.
pub fn train_with_validation(
    model: &mut DekgIlp,
    dataset: &DekgDataset,
    val_cfg: &ValidationConfig,
    rng: &mut dyn RngCore,
) -> ValidatedTrainReport {
    assert!(val_cfg.eval_every > 0 && val_cfg.patience > 0);
    assert!(!dataset.valid.is_empty(), "train_with_validation needs a non-empty validation set");
    let total_epochs = model.config().epochs;
    let chunk_cfg_epochs = val_cfg.eval_every.min(total_epochs);

    // Validation harness (fixed across evaluations for comparability).
    let graph = InferenceGraph::training_view(dataset);
    let mut filter = dataset.original.clone();
    for t in &dataset.valid {
        filter.insert(*t);
    }
    let links: Vec<(Triple, dekg_datasets::LinkClass)> = dataset
        .valid
        .iter()
        .take(val_cfg.max_links)
        .map(|&t| (t, dekg_datasets::LinkClass::Enclosing))
        .collect();

    let mut best_mrr = f64::NEG_INFINITY;
    let mut best_params: Option<dekg_tensor::ParamStore> = None;
    let mut strikes = 0usize;
    let mut valid_mrr = Vec::new();
    let mut epochs_run = 0usize;
    let mut merged: Option<TrainReport> = None;
    let mut stopped_early = false;

    while epochs_run < total_epochs {
        let this_chunk = chunk_cfg_epochs.min(total_epochs - epochs_run);
        // Temporarily rewrite the epoch budget for this chunk.
        let original_cfg = model.config().clone();
        let chunk_cfg = crate::config::DekgIlpConfig { epochs: this_chunk, ..original_cfg.clone() };
        *model.config_mut() = chunk_cfg;
        let report = train(model, dataset, rng);
        *model.config_mut() = original_cfg;
        epochs_run += this_chunk;
        merged = Some(match merged {
            None => report,
            Some(prev) => TrainReport {
                epochs: prev.epochs + report.epochs,
                initial_loss: prev.initial_loss,
                final_loss: report.final_loss,
                seconds: prev.seconds + report.seconds,
            },
        });

        // Validation MRR under a fixed protocol seed.
        let protocol = dekg_eval_protocol(val_cfg);
        let result = protocol_eval(model, &graph, &filter, &links, &protocol);
        valid_mrr.push(result);
        if result > best_mrr {
            best_mrr = result;
            best_params = Some(model.params().clone());
            strikes = 0;
        } else {
            strikes += 1;
            if strikes >= val_cfg.patience {
                stopped_early = true;
                break;
            }
        }
    }

    if let Some(best) = best_params {
        *model.params_mut() = best;
    }
    ValidatedTrainReport {
        train: merged.expect("at least one chunk ran"),
        valid_mrr,
        epochs_run,
        stopped_early,
    }
}

// Small indirections so this module does not depend on dekg-eval (a
// dependency cycle): the ranking protocol is re-implemented minimally.
fn dekg_eval_protocol(val_cfg: &ValidationConfig) -> (usize, u64) {
    (val_cfg.candidates, 0xDEC0)
}

/// Minimal filtered tail/head ranking for validation (MRR only).
fn protocol_eval(
    model: &DekgIlp,
    graph: &InferenceGraph,
    filter: &dekg_kg::TripleStore,
    links: &[(Triple, dekg_datasets::LinkClass)],
    protocol: &(usize, u64),
) -> f64 {
    use crate::traits::LinkPredictor;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let (k, seed) = *protocol;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut reciprocal = 0.0f64;
    let mut count = 0usize;
    for (truth, _) in links {
        // Tail prediction with K sampled filtered candidates.
        let mut candidates: Vec<Triple> = (0..graph.num_entities as u32)
            .map(|e| Triple::new(truth.head, truth.rel, dekg_kg::EntityId(e)))
            .filter(|c| c != truth && !filter.contains(c))
            .collect();
        if candidates.len() > k {
            candidates.shuffle(&mut rng);
            candidates.truncate(k);
        }
        let mut batch = Vec::with_capacity(candidates.len() + 1);
        batch.push(*truth);
        batch.extend_from_slice(&candidates);
        let scores = model.score_batch(graph, &batch);
        let s_true = scores[0];
        let higher = scores[1..].iter().filter(|&&s| s > s_true).count();
        let equal = scores[1..].iter().filter(|&&s| s == s_true).count();
        let rank = 1.0 + higher as f64 + equal as f64 / 2.0;
        reciprocal += 1.0 / rank;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        reciprocal / count as f64
    }
}

/// Records one training batch's combined objective (Eq. 15) on `g` and
/// returns the scalar loss `Var`.
///
/// This is the full per-batch tape used by [`train`]: negative
/// sampling (Eq. 12), `φ_sem + φ_tpo` scoring of both sides
/// (Eq. 4 + 11 + 13), the margin ranking loss (Eq. 14), and the
/// σ-weighted contrastive term (Eq. 7). It is public so correctness
/// tooling (`dekg check --grads`, the gradcheck test suite) can verify
/// the exact production tape rather than an approximation of it.
pub fn batch_loss(
    g: &mut Graph,
    model: &DekgIlp,
    dataset: &DekgDataset,
    train_graph: &InferenceGraph,
    sampler: &NegativeSampler<'_>,
    batch: &[Triple],
    rng: &mut impl Rng,
) -> Var {
    batch_loss_parts(g, model, dataset, train_graph, sampler, batch, rng).total
}

/// The Eq. 15 objective broken into its observable components.
///
/// All members live on the same tape as `total`; reading their values
/// is free (forward evaluation is eager) and backward from `total`
/// never visits the diagnostic-only means.
#[derive(Debug, Clone, Copy)]
pub struct BatchLossBreakdown {
    /// The combined loss actually optimized (Eq. 15).
    pub total: Var,
    /// The margin ranking term over `φ = φ_sem + φ_tpo` (Eq. 14).
    pub margin: Var,
    /// The σ-weighted contrastive term (Eq. 7), when the CLRM is
    /// enabled, σ > 0 and the batch produced at least one anchor.
    pub contrastive: Option<Var>,
    /// Mean `φ_sem` over the positives (diagnostic; `None` under the
    /// without-semantic ablation).
    pub sem_pos_mean: Option<Var>,
    /// Mean `φ_tpo` over the positives (diagnostic).
    pub tpo_pos_mean: Var,
}

impl BatchLossBreakdown {
    /// The tape outputs read by the caller beyond `total`: the
    /// diagnostic-only means plus the component terms the training
    /// loop logs. Declaring them as observed roots keeps the static
    /// tape analyzer from flagging deliberately unconsumed outputs.
    pub fn observed_vars(&self) -> Vec<Var> {
        let mut roots = vec![self.margin, self.tpo_pos_mean];
        if let Some(c) = self.contrastive {
            roots.push(c);
        }
        if let Some(s) = self.sem_pos_mean {
            roots.push(s);
        }
        roots
    }
}

/// [`batch_loss`] with the per-component breakdown exposed — the
/// training loop uses this to emit `train_step` events carrying the
/// margin/contrastive/φ-component values alongside the total.
pub fn batch_loss_parts(
    g: &mut Graph,
    model: &DekgIlp,
    dataset: &DekgDataset,
    train_graph: &InferenceGraph,
    sampler: &NegativeSampler<'_>,
    batch: &[Triple],
    rng: &mut impl Rng,
) -> BatchLossBreakdown {
    let prepared = prepare_batch(model, sampler, train_graph, batch, rng);
    record_prepared(g, model, dataset, train_graph, &prepared, rng)
}

/// Everything one Eq. 15 batch needs that is *not* tape recording: the
/// sampled negatives and both sides' extracted subgraphs.
///
/// Splitting preparation from recording lets the profiler
/// ([`crate::profile`]) time the pure tape-execution phase without
/// counting extraction against it. The split is RNG-transparent:
/// [`prepare_batch`] followed by [`record_prepared`] consumes the
/// training stream in exactly the order the fused
/// [`batch_loss_parts`] does (master negative seed, then dropout and
/// contrastive sampling during recording), so batches are bitwise
/// identical either way.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// The positive triples of this batch, in order.
    pub batch: Vec<Triple>,
    /// Positives repeated `neg_per_pos` times, aligned with `negs`.
    pub pos_rep: Vec<Triple>,
    /// The corrupted negatives (Eq. 12).
    pub negs: Vec<Triple>,
    /// Enclosing subgraphs of `pos_rep` (own edge excluded).
    pub pos_subgraphs: Vec<dekg_kg::Subgraph>,
    /// Enclosing subgraphs of `negs`.
    pub neg_subgraphs: Vec<dekg_kg::Subgraph>,
}

/// Samples this batch's negatives and extracts both sides' subgraphs —
/// the non-tape half of [`batch_loss_parts`]. Consumes exactly one
/// `u64` from `rng` (the master negative seed); extraction draws no
/// randomness.
pub fn prepare_batch(
    model: &DekgIlp,
    sampler: &NegativeSampler<'_>,
    train_graph: &InferenceGraph,
    batch: &[Triple],
    rng: &mut impl Rng,
) -> PreparedBatch {
    let cfg = model.config();

    // Negatives: neg_per_pos per positive, aligned by repetition. One
    // master seed is drawn from the training stream, then corruption
    // fans out in parallel under per-slot child seeds (Eq. 12; see
    // dekg_datasets::seeding) — the batch is a pure function of the
    // seed regardless of thread count.
    let neg_master: u64 = rng.gen();
    let pos_rep: Vec<Triple> =
        batch.iter().flat_map(|t| std::iter::repeat(*t).take(cfg.neg_per_pos)).collect();
    let negs = sampler.corrupt_batch(batch, cfg.neg_per_pos, neg_master);

    let extractor = SubgraphExtractor::new(&train_graph.adjacency, cfg.hops, cfg.extraction_mode())
        .with_backend(model.distance_backend());
    let pos_subgraphs = extract_side(&extractor, &pos_rep, true);
    let neg_subgraphs = extract_side(&extractor, &negs, false);
    PreparedBatch { batch: batch.to_vec(), pos_rep, negs, pos_subgraphs, neg_subgraphs }
}

/// Records the Eq. 15 objective for an already-[prepared](prepare_batch)
/// batch — the pure tape-recording half of [`batch_loss_parts`]. Only
/// this half touches the graph `g`; `rng` feeds edge dropout and
/// contrastive sampling, in the same order as the fused path.
pub fn record_prepared(
    g: &mut Graph,
    model: &DekgIlp,
    dataset: &DekgDataset,
    train_graph: &InferenceGraph,
    prepared: &PreparedBatch,
    rng: &mut impl Rng,
) -> BatchLossBreakdown {
    let cfg = model.config();
    let batch = &prepared.batch;

    // φ_sem over both sides in one tape.
    let (sem_pos, sem_neg) = match model.clrm() {
        Some(clrm) => {
            let p = clrm.score(g, model.params(), &train_graph.tables, &prepared.pos_rep);
            let n = clrm.score(g, model.params(), &train_graph.tables, &prepared.negs);
            (Some(p), Some(n))
        }
        None => (None, None),
    };

    // φ_tpo per triple over the pre-extracted subgraphs.
    let gsm = model.gsm();
    let tpo_pos = score_extracted(model, gsm, &prepared.pos_rep, &prepared.pos_subgraphs, g, rng);
    let tpo_neg = score_extracted(model, gsm, &prepared.negs, &prepared.neg_subgraphs, g, rng);

    let phi_pos = combine(g, sem_pos, tpo_pos);
    let phi_neg = combine(g, sem_neg, tpo_neg);
    let margin = g.margin_ranking_loss(phi_pos, phi_neg, cfg.margin);
    let mut loss = margin;
    let mut contrastive = None;
    let sem_pos_mean = sem_pos.map(|s| g.mean_all(s));
    let tpo_pos_mean = g.mean_all(tpo_pos);

    // Contrastive term over the batch's distinct entities.
    if let Some(clrm) = model.clrm() {
        if cfg.ablation.use_contrastive && cfg.sigma > 0.0 {
            let entities: BTreeSet<EntityId> =
                batch.iter().flat_map(|t| [t.head, t.tail]).collect();
            let mut terms: Vec<Var> = Vec::with_capacity(entities.len());
            for e in entities {
                let anchor = train_graph.tables.row(e);
                if anchor.is_empty() {
                    continue;
                }
                let (pos, neg) = sampling::sample_pairs(
                    anchor,
                    dataset.num_relations,
                    cfg.theta,
                    cfg.num_contrastive,
                    rng,
                );
                terms.push(clrm.contrastive_loss(
                    g,
                    model.params(),
                    anchor,
                    &pos,
                    &neg,
                    cfg.margin,
                ));
            }
            if !terms.is_empty() {
                let stacked = g.stack_scalars(&terms);
                let lc = g.mean_all(stacked);
                let scaled = g.mul_scalar(lc, cfg.sigma);
                loss = g.add(loss, scaled);
                contrastive = Some(scaled);
            }
        }
    }
    BatchLossBreakdown { total: loss, margin, contrastive, sem_pos_mean, tpo_pos_mean }
}

/// Builds a small fresh model on `dataset`, records one production
/// training batch with [`batch_loss`], and differentially checks the
/// tape against the f64 reference interpreter.
///
/// Returns the interpreter's findings (empty = clean). This is the
/// semantic half of `dekg check --grads`: it exercises the CLRM, GSM
/// and combined Eq. 15 objectives end-to-end on real data rather than
/// per-op fixtures.
pub fn grad_check_dataset(dataset: &DekgDataset, seed: u64) -> Vec<Diagnostic> {
    use rand::SeedableRng;
    let cfg = crate::config::DekgIlpConfig {
        dim: 8,
        num_contrastive: 2,
        gnn_layers: 2,
        attn_dim: 4,
        ..crate::config::DekgIlpConfig::quick()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(cfg, dataset, &mut rng);
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    let batch: Vec<Triple> = dataset.original.triples().iter().copied().take(8).collect();
    let mut g = Graph::new();
    let loss = batch_loss(&mut g, &model, dataset, &train_graph, &sampler, &batch, &mut rng);
    g.diff_check(loss, Some(model.params()))
}

/// Builds a small fresh model on `dataset`, records one production
/// training batch with [`batch_loss_parts`], and runs the static tape
/// analyzer over it without executing any kernels.
///
/// Returns the full [`dekg_tensor::TapeReport`] (clean = no
/// diagnostics). This is the structural half of `dekg check --tape`:
/// abstract shape interpretation, gradient-flow reachability over the
/// model's parameters, and the liveness/memory plan — all on the exact
/// Eq. 15 tape, with the breakdown's diagnostic means declared as
/// observed roots.
pub fn tape_check_dataset(dataset: &DekgDataset, seed: u64) -> dekg_tensor::TapeReport {
    use rand::SeedableRng;
    let cfg = crate::config::DekgIlpConfig {
        dim: 8,
        num_contrastive: 2,
        gnn_layers: 2,
        attn_dim: 4,
        ..crate::config::DekgIlpConfig::quick()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let model = DekgIlp::new(cfg, dataset, &mut rng);
    let train_graph = InferenceGraph::training_view(dataset);
    let sampler =
        NegativeSampler::new(0..dataset.num_original_entities as u32, vec![&dataset.original]);
    let batch: Vec<Triple> = dataset.original.triples().iter().copied().take(8).collect();
    let mut g = Graph::new();
    let parts = batch_loss_parts(&mut g, &model, dataset, &train_graph, &sampler, &batch, &mut rng);
    dekg_tensor::tapecheck::tapecheck_with(
        &g,
        parts.total,
        &parts.observed_vars(),
        Some(model.params()),
    )
}

/// The extraction half of one side's φ_tpo scoring: enclosing
/// subgraphs for each triple, positives with their own edge removed so
/// the model cannot read the answer off the graph. Extraction fans out
/// over the ambient rayon thread count (it consumes no randomness, so
/// the dropout RNG stream is untouched).
fn extract_side(
    extractor: &SubgraphExtractor<'_>,
    triples: &[Triple],
    exclude_self: bool,
) -> Vec<dekg_kg::Subgraph> {
    let links: Vec<(EntityId, EntityId, Option<Triple>)> =
        triples.iter().map(|t| (t.head, t.tail, exclude_self.then_some(*t))).collect();
    extractor.extract_batch(&links)
}

/// The recording half of one side's φ_tpo scoring: scores pre-extracted
/// subgraphs topologically, returning a stacked `[n]` Var. Recording
/// stays serial because the autograd graph and the dropout stream are
/// inherently ordered.
fn score_extracted(
    model: &DekgIlp,
    gsm: &crate::gsm::Gsm,
    triples: &[Triple],
    subgraphs: &[dekg_kg::Subgraph],
    g: &mut Graph,
    rng: &mut impl Rng,
) -> Var {
    let mut scores = Vec::with_capacity(triples.len());
    for (t, sg) in triples.iter().zip(subgraphs) {
        let s = gsm.score_subgraph(g, model.params(), sg, t.rel, true, rng);
        scores.push(s);
    }
    let stacked = g.stack_scalars(&scores);
    g.reshape(stacked, [triples.len()])
}

fn combine(g: &mut Graph, sem: Option<Var>, tpo: Var) -> Var {
    match sem {
        Some(s) => g.add(s, tpo),
        None => tpo,
    }
}

/// Adapter: lets a `&mut dyn RngCore` be used where `impl Rng` is
/// expected without monomorphizing the whole training loop.
struct RngShim<'a>(&'a mut dyn RngCore);

impl RngCore for RngShim<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, DekgIlpConfig};
    use crate::traits::{LinkPredictor, TrainableModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset(seed: u64) -> DekgDataset {
        dekg_datasets::tiny_fixture(seed)
    }

    fn quick_cfg() -> DekgIlpConfig {
        DekgIlpConfig {
            dim: 8,
            epochs: 3,
            batch_size: 16,
            num_contrastive: 2,
            gnn_layers: 2,
            attn_dim: 4,
            ..DekgIlpConfig::quick()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(DekgIlpConfig { epochs: 6, ..quick_cfg() }, &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert_eq!(report.epochs, 6);
        assert!(
            report.improved(),
            "loss should improve: {} -> {}",
            report.initial_loss,
            report.final_loss
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn trained_model_ranks_positives_above_corruptions() {
        let d = tiny_dataset(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(DekgIlpConfig { epochs: 8, ..quick_cfg() }, &d, &mut rng);
        model.fit(&d, &mut rng);

        // On *training* triples, positives should beat random
        // corruptions on average — the basic sanity of Eq. 14.
        let graph = InferenceGraph::training_view(&d);
        let sampler = NegativeSampler::new(0..d.num_original_entities as u32, vec![&d.original]);
        let positives: Vec<Triple> = d.original.triples().iter().copied().take(30).collect();
        let negatives: Vec<Triple> =
            positives.iter().map(|t| sampler.corrupt(t, &mut rng)).collect();
        let pos_scores = model.score_batch(&graph, &positives);
        let neg_scores = model.score_batch(&graph, &negatives);
        let pos_mean: f32 = pos_scores.iter().sum::<f32>() / pos_scores.len() as f32;
        let neg_mean: f32 = neg_scores.iter().sum::<f32>() / neg_scores.len() as f32;
        assert!(
            pos_mean > neg_mean,
            "positives should outscore corruptions: {pos_mean} vs {neg_mean}"
        );
    }

    #[test]
    fn all_ablations_train() {
        let d = tiny_dataset(3);
        for ablation in [
            Ablation::without_semantic(),
            Ablation::without_contrastive(),
            Ablation::without_improved_labeling(),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let cfg = DekgIlpConfig { ablation, epochs: 2, ..quick_cfg() };
            let mut model = DekgIlp::new(cfg, &d, &mut rng);
            let report = model.fit(&d, &mut rng);
            assert!(report.final_loss.is_finite(), "{}", model.name());
        }
    }

    #[test]
    fn validated_training_tracks_mrr_and_restores_best() {
        let d = tiny_dataset(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = DekgIlpConfig { epochs: 6, ..quick_cfg() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        let val_cfg = crate::train::ValidationConfig {
            eval_every: 2,
            patience: 2,
            candidates: 8,
            max_links: 20,
        };
        let report = crate::train::train_with_validation(&mut model, &d, &val_cfg, &mut rng);
        assert!(!report.valid_mrr.is_empty());
        assert!(report.epochs_run <= 6);
        assert!(report.valid_mrr.iter().all(|m| m.is_finite() && *m >= 0.0));
        // Config restored after chunked training.
        assert_eq!(model.config().epochs, 6);
    }

    #[test]
    fn lr_decay_and_bernoulli_options_train() {
        let d = tiny_dataset(5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg =
            DekgIlpConfig { epochs: 3, lr_decay: 0.8, bernoulli_negatives: true, ..quick_cfg() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let d = tiny_dataset(4);
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut model = DekgIlp::new(DekgIlpConfig { epochs: 2, ..quick_cfg() }, &d, &mut rng);
            model.fit(&d, &mut rng);
            let graph = InferenceGraph::from_dataset(&d);
            model.score_batch(&graph, &d.test_enclosing[..5])
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Central-difference spot check over randomly sampled parameter
    /// coordinates: perturbs each coordinate by `±ε`, re-evaluates the
    /// loss with `eval` (which must be deterministic in the parameters
    /// — reseed any internal rngs per call), and compares the slope
    /// against the analytic gradient in `grads`.
    fn fd_spot_check(
        model: &mut DekgIlp,
        grads: &dekg_tensor::GradStore,
        eval: &dyn Fn(&DekgIlp) -> f64,
        samples: usize,
        seed: u64,
    ) {
        use rand::Rng as _;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids: Vec<(dekg_tensor::ParamId, usize)> =
            model.params().iter().map(|(id, _, t)| (id, t.data().len())).collect();
        for _ in 0..samples {
            let (id, len) = ids[rng.gen_range(0..ids.len())];
            let k = rng.gen_range(0..len);
            let x = model.params().get(id).data()[k];
            let eps = 5e-3 * (1.0 + x.abs());
            let hi = x + eps;
            let lo = x - eps;
            model.params_mut().get_mut(id).data_mut()[k] = hi;
            let f_hi = eval(model);
            model.params_mut().get_mut(id).data_mut()[k] = lo;
            let f_lo = eval(model);
            model.params_mut().get_mut(id).data_mut()[k] = x;
            let denom = f64::from(hi) - f64::from(lo);
            let fd = (f_hi - f_lo) / denom;
            let an = grads.get(id).map_or(0.0, |t| f64::from(t.data()[k]));
            let tol = 5e-3 + 3e-2 * fd.abs().max(an.abs());
            assert!(
                (fd - an).abs() <= tol,
                "param {} coord {k}: central difference {fd} vs analytic {an} (tol {tol})",
                model.params().name_of(id),
            );
        }
    }

    #[test]
    fn clrm_losses_pass_finite_difference_check() {
        let d = tiny_dataset(11);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(quick_cfg(), &d, &mut rng);
        let graph = InferenceGraph::training_view(&d);
        let triples: Vec<Triple> = d.original.triples().iter().copied().take(6).collect();

        let build = |m: &DekgIlp| -> (Graph, Var) {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let clrm = m.clrm().expect("full model has CLRM");
            let mut g = Graph::new();
            let scores = clrm.score(&mut g, m.params(), &graph.tables, &triples);
            let sem = g.mean_all(scores);
            let anchor = graph.tables.row(triples[0].head);
            let (pos, neg) = sampling::sample_pairs(anchor, d.num_relations, 2.0, 2, &mut rng);
            let lc = clrm.contrastive_loss(&mut g, m.params(), anchor, &pos, &neg, 1.0);
            let loss = g.add(sem, lc);
            (g, loss)
        };
        let eval = |m: &DekgIlp| -> f64 {
            let (g, loss) = build(m);
            f64::from(g.value(loss).item())
        };
        let (g, loss) = build(&model);
        let diags = g.diff_check(loss, Some(model.params()));
        assert!(diags.is_empty(), "CLRM tape should be clean: {diags:?}");
        let grads = g.backward(loss);
        fd_spot_check(&mut model, &grads, &eval, 15, 101);
    }

    #[test]
    fn gsm_loss_passes_finite_difference_check() {
        let d = tiny_dataset(12);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(quick_cfg(), &d, &mut rng);
        let graph = InferenceGraph::training_view(&d);
        let cfg = model.config().clone();
        let triples: Vec<Triple> = d.original.triples().iter().copied().take(3).collect();

        let build = |m: &DekgIlp| -> (Graph, Var) {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let extractor =
                SubgraphExtractor::new(&graph.adjacency, cfg.hops, cfg.extraction_mode());
            let mut g = Graph::new();
            let subgraphs = extract_side(&extractor, &triples, true);
            let scores = score_extracted(m, m.gsm(), &triples, &subgraphs, &mut g, &mut rng);
            let loss = g.mean_all(scores);
            (g, loss)
        };
        let eval = |m: &DekgIlp| -> f64 {
            let (g, loss) = build(m);
            f64::from(g.value(loss).item())
        };
        let (g, loss) = build(&model);
        let diags = g.diff_check(loss, Some(model.params()));
        assert!(diags.is_empty(), "GSM tape should be clean: {diags:?}");
        let grads = g.backward(loss);
        fd_spot_check(&mut model, &grads, &eval, 15, 202);
    }

    #[test]
    fn combined_objective_passes_finite_difference_check() {
        let d = tiny_dataset(13);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = DekgIlp::new(quick_cfg(), &d, &mut rng);
        let graph = InferenceGraph::training_view(&d);
        let sampler = NegativeSampler::new(0..d.num_original_entities as u32, vec![&d.original]);
        let batch: Vec<Triple> = d.original.triples().iter().copied().take(4).collect();

        let build = |m: &DekgIlp| -> (Graph, Var) {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let mut g = Graph::new();
            let loss = batch_loss(&mut g, m, &d, &graph, &sampler, &batch, &mut rng);
            (g, loss)
        };
        let eval = |m: &DekgIlp| -> f64 {
            let (g, loss) = build(m);
            f64::from(g.value(loss).item())
        };
        let (g, loss) = build(&model);
        let diags = g.diff_check(loss, Some(model.params()));
        assert!(diags.is_empty(), "Eq. 15 tape should be clean: {diags:?}");
        let grads = g.backward(loss);
        fd_spot_check(&mut model, &grads, &eval, 12, 303);
    }

    #[test]
    fn grad_check_dataset_is_clean() {
        let d = tiny_dataset(9);
        let diags = grad_check_dataset(&d, 0);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn training_with_gradcheck_every_runs_clean() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = DekgIlpConfig { epochs: 1, gradcheck_every: 31, ..quick_cfg() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn tape_check_dataset_is_clean() {
        let d = tiny_dataset(9);
        let report = tape_check_dataset(&d, 0);
        assert!(report.is_clean(), "production training tape not clean:\n{}", report.render());
        assert!(report.params_checked > 0);
        assert!(report.plan.peak_live_bytes > 0);
        assert!(report.plan.peak_live_bytes <= report.plan.total_value_bytes);
    }

    #[test]
    fn training_with_tape_report_runs_clean() {
        let d = tiny_dataset(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = DekgIlpConfig { epochs: 1, tape_report: true, ..quick_cfg() };
        let mut model = DekgIlp::new(cfg, &d, &mut rng);
        let report = model.fit(&d, &mut rng);
        assert!(report.final_loss.is_finite());
    }
}
