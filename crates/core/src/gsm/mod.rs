//! GSM — GNN-based Subgraph Modeling.
//!
//! GSM extends GraIL's subgraph reasoning with the improved node
//! labeling of Section IV-C2 (via [`dekg_kg::ExtractionMode::Union`] +
//! [`dekg_gnn::LabelingMode::Improved`]). Given the enclosing subgraph
//! `G(e_i, r_k, e_j)`, an L-layer R-GCN with edge attention produces
//! node embeddings; the topological score is the linear readout of
//! Eq. 11:
//!
//! ```text
//! φ_tpo = [ h_G ⊕ h_i ⊕ h_j ⊕ r_k^tpo ] · W
//! ```

use dekg_gnn::{BatchedEncodeWorkspace, SubgraphEncoder, SubgraphEncoderConfig};
use dekg_kg::{BatchedSubgraphs, Subgraph};
use dekg_tensor::{init, kernels, Graph, ParamId, ParamStore, Var};
use rand::Rng;

/// Reusable buffers for [`Gsm::score_subgraphs_batched`]: the batched
/// encoder workspace plus the packed readout/score matrices. Keep one
/// per worker thread (e.g. in a `thread_local`) and steady-state
/// batched scoring performs no heap allocation at all.
#[derive(Debug, Default, Clone)]
pub struct InferenceWorkspace {
    enc: BatchedEncodeWorkspace,
    /// `[b, 4d]` concatenated readout rows.
    cat: Vec<f32>,
    /// `[b]` score column.
    scores: Vec<f32>,
}

impl InferenceWorkspace {
    /// An empty workspace; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The GSM parameters: the subgraph encoder plus the topological
/// relation embeddings `r^tpo` and the scoring matrix `W`.
#[derive(Debug, Clone)]
pub struct Gsm {
    encoder: SubgraphEncoder,
    dim: usize,
    /// `r^tpo ∈ R^{|R| × d}`.
    rel_tpo: ParamId,
    /// `W ∈ R^{4d × 1}` scoring the concatenated readout.
    w_out: ParamId,
}

impl Gsm {
    /// Registers GSM parameters under `prefix`.
    pub fn new(
        encoder_cfg: SubgraphEncoderConfig,
        prefix: &str,
        params: &mut ParamStore,
        rng: &mut impl Rng,
    ) -> Self {
        let dim = encoder_cfg.dim;
        let num_relations = encoder_cfg.num_relations;
        let encoder = SubgraphEncoder::new(encoder_cfg, &format!("{prefix}.encoder"), params, rng);
        let rel_tpo = params
            .insert(format!("{prefix}.rel_tpo"), init::xavier_uniform([num_relations, dim], rng));
        let w_out =
            params.insert(format!("{prefix}.w_out"), init::xavier_uniform([4 * dim, 1], rng));
        Gsm { encoder, dim, rel_tpo, w_out }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying encoder (exposes hops/labeling configuration).
    pub fn encoder(&self) -> &SubgraphEncoder {
        &self.encoder
    }

    /// Scores one candidate link given its extracted subgraph.
    ///
    /// Returns a scalar (`[1, 1]`) Var. `train` enables edge dropout.
    pub fn score_subgraph(
        &self,
        g: &mut Graph,
        params: &ParamStore,
        sg: &Subgraph,
        rel: dekg_kg::RelationId,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let enc = self.encoder.encode(g, params, sg, train, rng);
        let rel_tpo = g.param(params, self.rel_tpo);
        let r = g.gather_rows(rel_tpo, &[rel.index()]);
        let cat = g.concat_cols(&[enc.graph, enc.head, enc.tail, r]);
        let w = g.param(params, self.w_out);
        g.matmul(cat, w)
    }

    /// Scores many subgraphs on one tape with parameters mounted once —
    /// the evaluation fast path (mounting the per-relation weight stack
    /// per candidate dominates scoring cost otherwise). Returns the raw
    /// `f32` scores; no dropout is applied (evaluation semantics).
    pub fn score_subgraphs_eval(
        &self,
        params: &ParamStore,
        items: &[(&Subgraph, dekg_kg::RelationId)],
    ) -> Vec<f32> {
        if items.is_empty() {
            return Vec::new();
        }
        let (g, scores) = self.record_eval_tape(params, items);
        scores.into_iter().map(|s| g.value(s).item()).collect()
    }

    /// Records the [`Gsm::score_subgraphs_eval`] tape without reading
    /// the scores off it: parameters mounted once, no dropout, one
    /// scalar `Var` per item. Exposed so the profiler can bracket pure
    /// tape recording; forward values are eager, so reading them later
    /// is free and bitwise identical.
    pub fn record_eval_tape(
        &self,
        params: &ParamStore,
        items: &[(&Subgraph, dekg_kg::RelationId)],
    ) -> (Graph, Vec<Var>) {
        // Eval never draws randomness; the encoder signature needs one.
        use rand::SeedableRng;
        // lint: hermetic-ok — eval path draws nothing; the constant seed feeds an encoder signature that demands an Rng
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut g = Graph::new();
        let mounted = self.encoder.mount(&mut g, params);
        let rel_tpo = g.param(params, self.rel_tpo);
        let w = g.param(params, self.w_out);
        let mut out = Vec::with_capacity(items.len());
        // Ranking batches share one relation across all candidates;
        // memoize the r^tpo row gather per relation instead of
        // re-gathering per candidate. Same values on the tape → same
        // scores, fewer nodes.
        let mut rel_rows: std::collections::HashMap<usize, Var> = std::collections::HashMap::new();
        for (sg, rel) in items {
            let enc = self.encoder.encode_mounted(&mut g, &mounted, sg, false, &mut rng);
            let r = match rel_rows.get(&rel.index()) {
                Some(&r) => r,
                None => {
                    let r = g.gather_rows(rel_tpo, &[rel.index()]);
                    rel_rows.insert(rel.index(), r);
                    r
                }
            };
            let cat = g.concat_cols(&[enc.graph, enc.head, enc.tail, r]);
            out.push(g.matmul(cat, w));
        }
        (g, out)
    }

    /// Scores many subgraphs through the forward-only encoder — no
    /// autograd tape at all. Bitwise identical to
    /// [`Gsm::score_subgraphs_eval`] (same kernels, same op order; see
    /// [`dekg_gnn::SubgraphEncoder::encode_inference`]) but skips the
    /// tape's node bookkeeping, which dominates evaluation cost.
    pub fn score_subgraphs_inference(
        &self,
        params: &ParamStore,
        items: &[(&Subgraph, dekg_kg::RelationId)],
    ) -> Vec<f32> {
        let rel_tpo = params.get(self.rel_tpo);
        let w = params.get(self.w_out).data();
        let d = self.dim;
        let mut cat = vec![0.0f32; 4 * d];
        // The r^tpo block of `cat` only changes when the relation does —
        // constant across a ranking query's candidates, so skip the
        // per-candidate re-copy.
        let mut cur_rel: Option<usize> = None;
        items
            .iter()
            .map(|(sg, rel)| {
                let enc = self.encoder.encode_inference(params, sg);
                cat[..d].copy_from_slice(&enc.graph);
                cat[d..2 * d].copy_from_slice(&enc.head);
                cat[2 * d..3 * d].copy_from_slice(&enc.tail);
                if cur_rel != Some(rel.index()) {
                    cat[3 * d..].copy_from_slice(rel_tpo.row(rel.index()));
                    cur_rel = Some(rel.index());
                }
                let mut out = [0.0f32];
                kernels::matmul(&cat, w, &mut out, 1, 4 * d, 1);
                out[0]
            })
            .collect()
    }

    /// Scores a block-diagonal batch of subgraphs (`rels[i]` pairing
    /// with segment `i`) through the batched encoder, appending one
    /// score per segment to `out`.
    ///
    /// Bitwise identical to [`Gsm::score_subgraphs_inference`] over the
    /// same (subgraph, relation) pairs: the batched encoder is pinned
    /// to the per-subgraph encoder segment by segment, and the final
    /// `[b, 4d] × [4d, 1]` readout matmul computes each row exactly as
    /// the per-candidate `[1, 4d]` matmul does (rows are independent).
    ///
    /// # Panics
    /// If `rels.len() != batch.num_graphs()`.
    pub fn score_subgraphs_batched(
        &self,
        params: &ParamStore,
        batch: &BatchedSubgraphs<'_>,
        rels: &[dekg_kg::RelationId],
        ws: &mut InferenceWorkspace,
        out: &mut Vec<f32>,
    ) {
        let b = batch.num_graphs();
        assert_eq!(rels.len(), b, "one relation per packed subgraph");
        if b == 0 {
            return;
        }
        self.encoder.encode_inference_batched(params, batch, &mut ws.enc);
        let rel_tpo = params.get(self.rel_tpo);
        let w = params.get(self.w_out).data();
        let d = self.dim;
        ws.cat.resize(b * 4 * d, 0.0);
        for (i, rel) in rels.iter().enumerate() {
            let row = &mut ws.cat[i * 4 * d..(i + 1) * 4 * d];
            row[..d].copy_from_slice(&ws.enc.graph[i * d..(i + 1) * d]);
            row[d..2 * d].copy_from_slice(&ws.enc.heads[i * d..(i + 1) * d]);
            row[2 * d..3 * d].copy_from_slice(&ws.enc.tails[i * d..(i + 1) * d]);
            row[3 * d..].copy_from_slice(rel_tpo.row(rel.index()));
        }
        ws.scores.resize(b, 0.0);
        kernels::matmul(&ws.cat, w, &mut ws.scores, b, 4 * d, 1);
        out.extend_from_slice(&ws.scores);
    }

    /// Scores one subgraph under many relations — the `(h, ?, t)`
    /// relation-prediction fast path, where every candidate shares the
    /// same enclosing subgraph. Encodes once and appends one score per
    /// relation to `out`, each bitwise identical to scoring
    /// `(sg, rels[i])` through [`Gsm::score_subgraphs_inference`]
    /// (which would re-encode the identical subgraph per candidate and
    /// get the identical encoding back).
    pub fn score_subgraph_multi_rel(
        &self,
        params: &ParamStore,
        sg: &Subgraph,
        rels: &[dekg_kg::RelationId],
        ws: &mut InferenceWorkspace,
        out: &mut Vec<f32>,
    ) {
        if rels.is_empty() {
            return;
        }
        let graphs = std::slice::from_ref(sg);
        let batch = BatchedSubgraphs::pack(graphs);
        self.encoder.encode_inference_batched(params, &batch, &mut ws.enc);
        let rel_tpo = params.get(self.rel_tpo);
        let w = params.get(self.w_out).data();
        let d = self.dim;
        let b = rels.len();
        ws.cat.resize(b * 4 * d, 0.0);
        for (i, rel) in rels.iter().enumerate() {
            let row = &mut ws.cat[i * 4 * d..(i + 1) * 4 * d];
            row[..d].copy_from_slice(&ws.enc.graph[..d]);
            row[d..2 * d].copy_from_slice(&ws.enc.heads[..d]);
            row[2 * d..3 * d].copy_from_slice(&ws.enc.tails[..d]);
            row[3 * d..].copy_from_slice(rel_tpo.row(rel.index()));
        }
        ws.scores.resize(b, 0.0);
        kernels::matmul(&ws.cat, w, &mut ws.scores, b, 4 * d, 1);
        out.extend_from_slice(&ws.scores);
    }

    /// The endpoint embeddings `(h_i^L, h_j^L)` of a subgraph — used by
    /// the Fig. 8 heat-map case study.
    pub fn embed_endpoints(
        &self,
        params: &ParamStore,
        sg: &Subgraph,
        rng: &mut impl Rng,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut g = Graph::new();
        let enc = self.encoder.encode(&mut g, params, sg, false, rng);
        (g.value(enc.head).row(0).to_vec(), g.value(enc.tail).row(0).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_gnn::LabelingMode;
    use dekg_kg::{
        Adjacency, EntityId, ExtractionMode, RelationId, SubgraphExtractor, Triple, TripleStore,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> SubgraphEncoderConfig {
        SubgraphEncoderConfig {
            num_relations: 3,
            hops: 2,
            dim: 8,
            layers: 2,
            attn_dim: 4,
            edge_dropout: 0.3,
            labeling: LabelingMode::Improved,
            num_bases: None,
        }
    }

    fn setup() -> (ParamStore, Gsm, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let gsm = Gsm::new(cfg(), "gsm", &mut ps, &mut rng);
        (ps, gsm, rng)
    }

    fn chain() -> (TripleStore, Adjacency) {
        let store = TripleStore::from_triples([
            Triple::from_raw(0, 0, 1),
            Triple::from_raw(1, 1, 2),
            Triple::from_raw(2, 2, 3),
        ]);
        let adj = Adjacency::from_store(&store, 4);
        (store, adj)
    }

    #[test]
    fn scalar_score_shape() {
        let (ps, gsm, mut rng) = setup();
        let (_, adj) = chain();
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(3),
            None,
        );
        let mut g = Graph::new();
        let s = gsm.score_subgraph(&mut g, &ps, &sg, RelationId(1), false, &mut rng);
        assert_eq!(g.shape(s).dims(), &[1, 1]);
        assert!(g.value(s).item().is_finite());
    }

    #[test]
    fn relation_changes_score() {
        let (ps, gsm, mut rng) = setup();
        let (_, adj) = chain();
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(3),
            None,
        );
        let mut g = Graph::new();
        let s0 = gsm.score_subgraph(&mut g, &ps, &sg, RelationId(0), false, &mut rng);
        let s1 = gsm.score_subgraph(&mut g, &ps, &sg, RelationId(1), false, &mut rng);
        assert_ne!(g.value(s0).item(), g.value(s1).item());
    }

    #[test]
    fn disconnected_subgraph_scoreable() {
        // The whole point of GSM: a bridging link's two-component
        // subgraph still yields a usable score.
        let (ps, gsm, mut rng) = setup();
        let store =
            TripleStore::from_triples([Triple::from_raw(0, 0, 1), Triple::from_raw(2, 1, 3)]);
        let adj = Adjacency::from_store(&store, 4);
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(2),
            None,
        );
        assert!(sg.is_disconnected());
        let mut g = Graph::new();
        let s = gsm.score_subgraph(&mut g, &ps, &sg, RelationId(0), false, &mut rng);
        assert!(g.value(s).item().is_finite());
    }

    #[test]
    fn training_signal_reaches_all_parts() {
        let (ps, gsm, mut rng) = setup();
        let (_, adj) = chain();
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(0),
            EntityId(3),
            None,
        );
        let mut g = Graph::new();
        let s = gsm.score_subgraph(&mut g, &ps, &sg, RelationId(1), false, &mut rng);
        let sq = g.square(s);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        // W, r_tpo and at least one encoder weight must receive grads.
        assert!(grads.get(ps.id_of("gsm.w_out").unwrap()).is_some());
        assert!(grads.get(ps.id_of("gsm.rel_tpo").unwrap()).is_some());
        assert!(grads.get(ps.id_of("gsm.encoder.layer0.w_self").unwrap()).is_some());
    }

    #[test]
    fn inference_scores_bitwise_match_tape_scores() {
        // The eval protocol ranks with the forward-only path; if it
        // drifted from the tape by even one ULP, rankings could differ
        // between training-time probes and evaluation.
        for num_bases in [None, Some(2)] {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let mut ps = ParamStore::new();
            let gsm =
                Gsm::new(SubgraphEncoderConfig { num_bases, ..cfg() }, "gsm", &mut ps, &mut rng);
            let (_, adj) = chain();
            let extractor = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
            let sgs: Vec<_> = [(0, 3), (1, 2), (0, 2), (2, 3)]
                .iter()
                .map(|&(h, t)| extractor.extract(EntityId(h), EntityId(t), None))
                .collect();
            let items: Vec<(&Subgraph, RelationId)> =
                sgs.iter().enumerate().map(|(i, sg)| (sg, RelationId((i % 3) as u32))).collect();
            let tape = gsm.score_subgraphs_eval(&ps, &items);
            let fast = gsm.score_subgraphs_inference(&ps, &items);
            assert_eq!(tape, fast, "num_bases {num_bases:?}");
        }
    }

    #[test]
    fn endpoint_embeddings_have_dim_width() {
        let (ps, gsm, mut rng) = setup();
        let (_, adj) = chain();
        let sg = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union).extract(
            EntityId(1),
            EntityId(2),
            None,
        );
        let (h, t) = gsm.embed_endpoints(&ps, &sg, &mut rng);
        assert_eq!(h.len(), 8);
        assert_eq!(t.len(), 8);
    }
}
