//! Property test: every freshly generated synthetic dataset passes the
//! full validator suite with zero diagnostics — the generator and the
//! checker agree on what a well-formed DEKG is, across seeds, scales
//! and raw-KG profiles.

use dekg_check::{summarize, validate, validate_component_table, validate_profile};
use dekg_datasets::{generate, DatasetProfile, RawKg, SplitKind, SynthConfig};
use dekg_kg::ComponentTable;
use proptest::prelude::*;

proptest! {
    #[test]
    fn fresh_synthetic_dataset_lints_clean(
        seed in 0u64..1000,
        raw_ix in 0usize..3,
        split_ix in 0usize..3,
        scale_step in 2u32..8,
    ) {
        let raw = RawKg::all()[raw_ix];
        let split = SplitKind::all()[split_ix];
        let scale = f64::from(scale_step) / 100.0;
        let profile = DatasetProfile::table2(raw, split).scaled(scale);
        let dataset = generate(&SynthConfig::for_profile(profile, seed));

        let diags = validate(&dataset);
        prop_assert!(diags.is_empty(), "dataset diagnostics: {diags:?}");

        // The component table of the inference graph must agree with
        // the union store it was built from.
        let store = dataset.inference_store();
        let table =
            ComponentTable::from_store(&store, dataset.num_entities(), dataset.num_relations);
        let diags = validate_component_table(&table, &store);
        prop_assert!(diags.is_empty(), "component diagnostics: {diags:?}");

        prop_assert!(summarize(&[]).is_clean());
    }
}

/// The profile validator accepts a generated dataset against its own
/// generation target at a representative scale (deterministic — the
/// tolerance bands are statistical, so one well-chosen point beats a
/// flaky sweep of tiny graphs where floors dominate).
#[test]
fn generated_dataset_is_statistically_plausible() {
    let profile = DatasetProfile::table2(RawKg::Fb15k237, SplitKind::Eq).scaled(0.3);
    let dataset = generate(&SynthConfig::for_profile(profile, 17));
    let diags = validate_profile(&dataset, &profile);
    assert!(diags.is_empty(), "{diags:?}");
}
