//! Consistency checks between a [`ComponentTable`] and the triple
//! store it claims to summarize.

use crate::{emit_capped, Diagnostic, Severity};
use dekg_kg::{ComponentTable, EntityId, RelationId, TripleStore};

/// Verifies that `table` matches what [`ComponentTable::from_store`]
/// would produce for `store` — i.e. every `a_i^k` count (Eq. 2 of the
/// paper) agrees with the triples.
///
/// CLRM's entity representations are weighted sums over these counts;
/// a stale or hand-edited table silently skews every unseen-entity
/// embedding, so divergence is an error, not a warning.
pub fn validate_component_table(table: &ComponentTable, store: &TripleStore) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let num_entities = table.num_entities();
    let num_relations = table.num_relations();

    let mut universe = Vec::new();
    for t in store.triples() {
        if t.head.index() >= num_entities || t.tail.index() >= num_entities {
            universe.push(format!(
                "triple {t} falls outside the table's {num_entities}-entity universe"
            ));
        } else if t.rel.index() >= num_relations {
            universe.push(format!(
                "triple {t} falls outside the table's {num_relations}-relation space"
            ));
        }
    }
    if !universe.is_empty() {
        emit_capped(
            out.as_mut(),
            Severity::Error,
            "component-universe",
            "component-table",
            universe,
        );
        // Recomputation would index out of bounds; stop here.
        return out;
    }

    let rebuilt = ComponentTable::from_store(store, num_entities, num_relations);
    let mut mismatches = Vec::new();
    for i in 0..num_entities {
        let e = EntityId(i as u32);
        let (got, want) = (table.row(e), rebuilt.row(e));
        if got == want {
            continue;
        }
        mismatches.push(match first_divergence(got.entries(), want.entries()) {
            Some((r, g, w)) => {
                format!("entity {e}: relation {r} has count {g} in the table but {w} in the store")
            }
            None => format!("entity {e}: row diverges from the store"),
        });
    }
    emit_capped(&mut out, Severity::Error, "component-mismatch", "component-table", mismatches);
    out
}

/// First relation whose count differs between two sorted entry lists.
fn first_divergence(
    got: &[(RelationId, u32)],
    want: &[(RelationId, u32)],
) -> Option<(RelationId, u32, u32)> {
    let count = |entries: &[(RelationId, u32)], r: RelationId| {
        entries.iter().find(|&&(rel, _)| rel == r).map_or(0, |&(_, c)| c)
    };
    let mut rels: Vec<RelationId> = got.iter().chain(want).map(|&(r, _)| r).collect();
    rels.sort_unstable();
    rels.dedup();
    rels.into_iter().find_map(|r| {
        let (g, w) = (count(got, r), count(want, r));
        (g != w).then_some((r, g, w))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::Triple;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::from_raw(h, r, ta)
    }

    #[test]
    fn fresh_table_is_consistent() {
        let store = TripleStore::from_triples([t(0, 0, 1), t(1, 1, 2), t(0, 1, 2)]);
        let table = ComponentTable::from_store(&store, 3, 2);
        assert!(validate_component_table(&table, &store).is_empty());
    }

    #[test]
    fn stale_table_is_reported_with_the_diverging_count() {
        let old = TripleStore::from_triples([t(0, 0, 1)]);
        let mut store = old.clone();
        store.insert(t(0, 1, 2)); // arrives after the table was built
        let table = ComponentTable::from_store(&old, 3, 2);
        let diags = validate_component_table(&table, &store);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == "component-mismatch"), "{diags:?}");
        assert!(
            diags[0].message.contains("count 0 in the table but 1 in the store"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn out_of_universe_store_is_reported_without_panicking() {
        let store = TripleStore::from_triples([t(0, 0, 9)]);
        let table = ComponentTable::from_store(&TripleStore::new(), 3, 2);
        let diags = validate_component_table(&table, &store);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "component-universe");
    }

    #[test]
    fn out_of_relation_space_is_reported() {
        let store = TripleStore::from_triples([t(0, 5, 1)]);
        let table = ComponentTable::from_store(&TripleStore::new(), 3, 2);
        let diags = validate_component_table(&table, &store);
        assert_eq!(diags[0].code, "component-universe");
        assert!(diags[0].message.contains("2-relation"), "{}", diags[0].message);
    }
}
