//! Invariant checks over a whole [`DekgDataset`].

use crate::{emit_capped, Diagnostic, Severity};
use dekg_datasets::{DekgDataset, LinkClass};
use dekg_kg::{EntityId, Triple};
use std::collections::HashSet;

/// Validates every structural invariant of a DEKG dataset, returning
/// all findings instead of stopping at the first.
///
/// Errors mean the dataset violates the paper's setting (Definitions
/// 1–4) or refers to ids outside its own vocabulary; warnings flag
/// structure that is legal but almost certainly unintended.
pub fn validate(dataset: &DekgDataset) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ids_ok = check_id_spaces(dataset, &mut out);
    check_disconnectedness(dataset, &mut out);
    check_heldout(dataset, &mut out);
    if ids_ok {
        check_coverage(dataset, &mut out);
    }
    out
}

/// Every `(area, triples)` pair of the dataset, held-out sets included.
fn areas(dataset: &DekgDataset) -> [(&'static str, Vec<Triple>); 5] {
    [
        ("G", dataset.original.triples().to_vec()),
        ("G'", dataset.emerging.triples().to_vec()),
        ("valid", dataset.valid.clone()),
        ("test-enclosing", dataset.test_enclosing.clone()),
        ("test-bridging", dataset.test_bridging.clone()),
    ]
}

/// Id hygiene: the seen/unseen partition is well formed and every
/// triple stays inside the vocabulary. Returns whether all ids were in
/// bounds (coverage checks index by id and need that).
fn check_id_spaces(dataset: &DekgDataset, out: &mut Vec<Diagnostic>) -> bool {
    let num_entities = dataset.num_entities();
    if dataset.num_original_entities > num_entities {
        out.push(Diagnostic::error(
            "entity-partition",
            None,
            "vocab",
            format!(
                "num_original_entities {} exceeds the {num_entities}-entity vocabulary",
                dataset.num_original_entities
            ),
        ));
    }
    if dataset.num_relations == 0 {
        out.push(Diagnostic::error("relation-space", None, "vocab", "empty relation space"));
    }
    if dataset.num_relations != dataset.vocab.num_relations() {
        out.push(Diagnostic::error(
            "relation-space",
            None,
            "vocab",
            format!(
                "num_relations {} disagrees with the {}-relation vocabulary",
                dataset.num_relations,
                dataset.vocab.num_relations()
            ),
        ));
    }

    let mut clean = true;
    for (area, triples) in areas(dataset) {
        let mut findings = Vec::new();
        for t in &triples {
            if t.head.index() >= num_entities || t.tail.index() >= num_entities {
                findings.push(format!(
                    "triple {t} references an entity outside the {num_entities}-entity vocabulary"
                ));
            } else if t.rel.index() >= dataset.num_relations {
                findings.push(format!(
                    "triple {t} references a relation outside the {}-relation space",
                    dataset.num_relations
                ));
            }
        }
        if !findings.is_empty() {
            clean = false;
            emit_capped(out, Severity::Error, "dangling-id", area, findings);
        }
    }
    clean
}

/// The DEKG core invariant: `G ⊆ E×R×E`, `G' ⊆ E'×R×E'`, so the two
/// graphs share no entity and no edge can connect them.
fn check_disconnectedness(dataset: &DekgDataset, out: &mut Vec<Diagnostic>) {
    let mut findings = Vec::new();
    for t in dataset.original.triples() {
        if !dataset.is_original(t.head) || !dataset.is_original(t.tail) {
            findings.push(format!("original-KG triple {t} touches an unseen entity"));
        }
    }
    if !findings.is_empty() {
        emit_capped(out, Severity::Error, "cross-boundary-triple", "G", findings);
    }
    let mut findings = Vec::new();
    for t in dataset.emerging.triples() {
        if dataset.is_original(t.head) || dataset.is_original(t.tail) {
            findings.push(format!(
                "emerging-KG triple {t} touches a seen entity — G and G' are connected"
            ));
        }
    }
    if !findings.is_empty() {
        emit_capped(out, Severity::Error, "cross-boundary-triple", "G'", findings);
    }
}

/// Held-out links: correctly classified, absent from the observed
/// graphs, and not repeated across held-out sets.
fn check_heldout(dataset: &DekgDataset, out: &mut Vec<Diagnostic>) {
    let sets: [(&'static str, &[Triple], Option<LinkClass>); 3] = [
        ("valid", &dataset.valid, None),
        ("test-enclosing", &dataset.test_enclosing, Some(LinkClass::Enclosing)),
        ("test-bridging", &dataset.test_bridging, Some(LinkClass::Bridging)),
    ];

    for (area, triples, want) in sets {
        let mut leaks = Vec::new();
        let mut mislabeled = Vec::new();
        for t in triples {
            if dataset.original.contains(t) || dataset.emerging.contains(t) {
                leaks.push(format!("held-out link {t} is present in the observed graph"));
            }
            let got = dataset.classify(t);
            if got != want {
                let got_name = got.map_or("transductive (inside G)", LinkClass::name);
                let want_name = want.map_or("transductive (inside G)", LinkClass::name);
                mislabeled
                    .push(format!("link {t} is {got_name}, but this set holds {want_name} links"));
            }
        }
        emit_capped(out, Severity::Error, "split-leak", area, leaks);
        emit_capped(out, Severity::Error, "mislabeled-link", area, mislabeled);
    }

    let mut seen = HashSet::new();
    let mut dups = Vec::new();
    for (area, triples, _) in sets {
        for t in triples {
            if !seen.insert(*t) {
                dups.push(format!("link {t} appears more than once across held-out sets ({area})"));
            }
        }
    }
    emit_capped(out, Severity::Warning, "duplicate-heldout", "held-out", dups);
}

/// Entities with no triples can neither be represented (empty
/// component row) nor reached by any subgraph — almost always a
/// generation or loading bug. One collapsed warning per graph.
fn check_coverage(dataset: &DekgDataset, out: &mut Vec<Diagnostic>) {
    let isolated = |range: std::ops::Range<usize>, store: &dekg_kg::TripleStore| {
        range.filter(|&i| store.degree(EntityId(i as u32)) == 0).collect::<Vec<_>>()
    };
    for (area, ids) in [
        ("G", isolated(0..dataset.num_original_entities, &dataset.original)),
        ("G'", isolated(dataset.num_original_entities..dataset.num_entities(), &dataset.emerging)),
    ] {
        if ids.is_empty() {
            continue;
        }
        let preview: Vec<String> = ids.iter().take(5).map(|i| format!("e{i}")).collect();
        out.push(Diagnostic::warning(
            "isolated-entity",
            None,
            area,
            format!(
                "{} entity(ies) of {area} appear in no triple: {}{}",
                ids.len(),
                preview.join(", "),
                if ids.len() > 5 { ", …" } else { "" }
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_kg::{TripleStore, Vocab};

    /// `G = {a, b}`, `G' = {x, y}` — mirrors the generator invariants.
    fn tiny() -> DekgDataset {
        let mut vocab = Vocab::new();
        for n in ["a", "b", "x", "y"] {
            vocab.intern_entity(n);
        }
        vocab.intern_relation("r");
        DekgDataset {
            name: "tiny".into(),
            vocab,
            num_original_entities: 2,
            num_relations: 1,
            original: TripleStore::from_triples([Triple::from_raw(0, 0, 1)]),
            emerging: TripleStore::from_triples([Triple::from_raw(2, 0, 3)]),
            valid: vec![Triple::from_raw(1, 0, 0)],
            test_enclosing: vec![Triple::from_raw(3, 0, 2)],
            test_bridging: vec![Triple::from_raw(0, 0, 2)],
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_dataset_has_zero_diagnostics() {
        assert!(validate(&tiny()).is_empty());
    }

    #[test]
    fn connected_disconnected_kg_is_reported() {
        let mut d = tiny();
        d.emerging.insert(Triple::from_raw(0, 0, 3)); // crosses the boundary
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["cross-boundary-triple"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("connected"), "{}", diags[0].message);
    }

    #[test]
    fn leaked_test_triple_is_reported() {
        let mut d = tiny();
        let leak = d.test_enclosing[0];
        d.emerging.insert(leak);
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["split-leak"], "{diags:?}");
        assert_eq!(diags[0].op, "test-enclosing");
    }

    #[test]
    fn mislabeled_link_is_reported() {
        let mut d = tiny();
        // A fresh unseen–unseen link filed under the bridging set.
        d.test_bridging.push(Triple::from_raw(2, 0, 2));
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["mislabeled-link"], "{diags:?}");
        assert!(diags[0].message.contains("enclosing"), "{}", diags[0].message);
    }

    #[test]
    fn dangling_entity_id_is_reported() {
        let mut d = tiny();
        d.emerging.insert(Triple::from_raw(4, 0, 9)); // beyond the 4-entity vocab
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["dangling-id"], "{diags:?}");
        assert!(diags[0].message.contains("4-entity"), "{}", diags[0].message);
    }

    #[test]
    fn dangling_relation_id_is_reported() {
        let mut d = tiny();
        d.valid.push(Triple::from_raw(0, 7, 1));
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["dangling-id"], "{diags:?}");
        assert!(diags[0].message.contains("relation"), "{}", diags[0].message);
    }

    #[test]
    fn duplicate_heldout_link_warns() {
        let mut d = tiny();
        d.test_bridging.push(d.test_bridging[0]);
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["duplicate-heldout"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn isolated_entity_warns() {
        let mut d = tiny();
        d.vocab.intern_entity("z"); // a fifth, unseen entity with no triples
        let diags = validate(&d);
        assert_eq!(codes(&diags), vec!["isolated-entity"], "{diags:?}");
        assert!(diags[0].message.contains("e4"), "{}", diags[0].message);
    }

    #[test]
    fn broken_partition_is_reported() {
        let mut d = tiny();
        d.num_original_entities = 9;
        let diags = validate(&d);
        assert!(codes(&diags).contains(&"entity-partition"), "{diags:?}");
    }

    #[test]
    fn many_findings_collapse_past_cap() {
        let mut d = tiny();
        // Every seen–unseen pair in both directions, skipping the one
        // that is already the bridging test link (that would also be a
        // split leak): 7 crossing edges > CAP.
        for h in 0..2 {
            for t in 2..4 {
                if (h, t) != (0, 2) {
                    d.emerging.insert(Triple::from_raw(h, 0, t));
                }
                d.emerging.insert(Triple::from_raw(t, 0, h));
            }
        }
        let diags = validate(&d);
        assert!(diags.iter().all(|d| d.code == "cross-boundary-triple"), "{diags:?}");
        assert_eq!(diags.len(), crate::CAP + 1);
        assert!(diags.last().unwrap().message.contains("more finding"));
    }
}
