#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # dekg-check
//!
//! Static analysis over DEKG datasets: the knowledge-graph counterpart
//! to the autograd tape linter in [`dekg_tensor::check`]. Both report
//! through the same [`Diagnostic`] type, so the CLI can print tape and
//! KG findings uniformly.
//!
//! The validators never panic on malformed data — that is the point.
//! [`dekg_datasets::DekgDataset::validate`] asserts and is right for
//! generator self-checks; [`validate`] instead *collects* every broken
//! invariant so a user can see all of them at once:
//!
//! * **Disconnectedness** (Definitions 1–2 of the paper): no triple of
//!   the original KG `G` may touch an unseen entity, no triple of the
//!   emerging KG `G'` may touch a seen one. A single crossing edge
//!   silently turns the inductive benchmark transductive.
//! * **Split leakage**: held-out links must not appear in `G` or `G'`,
//!   and must carry the link class their endpoints imply.
//! * **Id hygiene**: every entity/relation id must fall inside the
//!   vocabulary, and the seen/unseen partition must be well formed.
//! * **Coverage**: entities with no triples at all (warning — they can
//!   never be ranked or represented).
//!
//! Two further validators cover derived structures:
//!
//! * [`validate_component_table`] recomputes relation-component rows
//!   (Eq. 2) from a store and reports divergent entries,
//! * [`validate_profile`] compares dataset statistics against a
//!   [`dekg_datasets::DatasetProfile`] and warns on wild deviations.
//!
//! ```
//! use dekg_check::validate;
//! use dekg_datasets::DekgDataset;
//! use dekg_kg::{Triple, TripleStore, Vocab};
//!
//! let mut vocab = Vocab::new();
//! for n in ["a", "b", "x", "y"] {
//!     vocab.intern_entity(n);
//! }
//! vocab.intern_relation("r");
//! let mut data = DekgDataset {
//!     name: "tiny".into(),
//!     vocab,
//!     num_original_entities: 2,
//!     num_relations: 1,
//!     original: TripleStore::from_triples([Triple::from_raw(0, 0, 1)]),
//!     emerging: TripleStore::from_triples([Triple::from_raw(2, 0, 3)]),
//!     valid: vec![Triple::from_raw(1, 0, 0)],
//!     test_enclosing: vec![Triple::from_raw(3, 0, 2)],
//!     test_bridging: vec![Triple::from_raw(0, 0, 2)],
//! };
//! assert!(validate(&data).is_empty());
//!
//! // An edge crossing the G/G' boundary breaks the DEKG setting.
//! data.emerging.insert(Triple::from_raw(0, 0, 3));
//! let diags = validate(&data);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, "cross-boundary-triple");
//! ```

mod components;
mod dataset;
mod profile;

pub use components::validate_component_table;
pub use dataset::validate;
pub use dekg_tensor::{Diagnostic, Severity};
pub use profile::validate_profile;

/// Runs the full per-op gradient-check suite from
/// [`dekg_tensor::gradcheck`]: every `Op` variant's finite-difference
/// check plus the coverage audit that fails when a variant has no
/// registered check. This is the semantic counterpart to the
/// structural tape linter — invoked by `dekg check --grads`.
pub fn validate_grads(seed: u64) -> Vec<Diagnostic> {
    dekg_tensor::gradcheck::run_all(seed)
}

/// Counts of findings by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Broken invariants — the dataset must not be used.
    pub errors: usize,
    /// Suspicious but survivable findings.
    pub warnings: usize,
}

impl Summary {
    /// True when nothing was found.
    pub fn is_clean(self) -> bool {
        self.errors == 0 && self.warnings == 0
    }
}

/// Tallies a diagnostic list by severity.
pub fn summarize(diags: &[Diagnostic]) -> Summary {
    let mut s = Summary::default();
    for d in diags {
        match d.severity {
            Severity::Error => s.errors += 1,
            Severity::Warning => s.warnings += 1,
        }
    }
    s
}

/// How many findings of one code are reported individually before the
/// remainder collapses into a single count.
pub(crate) const CAP: usize = 5;

/// Emits `findings` as diagnostics of one `(severity, code, area)`,
/// collapsing everything past [`CAP`] into a final "… and N more"
/// entry so a thoroughly broken dataset stays readable.
pub(crate) fn emit_capped(
    out: &mut Vec<Diagnostic>,
    severity: Severity,
    code: &'static str,
    area: &str,
    findings: Vec<String>,
) {
    let extra = findings.len().saturating_sub(CAP);
    for message in findings.into_iter().take(CAP) {
        out.push(Diagnostic { severity, code, node: None, op: area.to_owned(), message });
    }
    if extra > 0 {
        out.push(Diagnostic {
            severity,
            code,
            node: None,
            op: area.to_owned(),
            message: format!("… and {extra} more finding(s) of this kind"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tallies_by_severity() {
        let diags = vec![
            Diagnostic::error("a", None, "x", "m"),
            Diagnostic::warning("b", None, "x", "m"),
            Diagnostic::error("a", None, "x", "m"),
        ];
        let s = summarize(&diags);
        assert_eq!(s, Summary { errors: 2, warnings: 1 });
        assert!(!s.is_clean());
        assert!(summarize(&[]).is_clean());
    }

    #[test]
    fn validate_grads_is_clean() {
        let diags = validate_grads(7);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn capped_emission_collapses_overflow() {
        let mut out = Vec::new();
        let findings = (0..CAP + 3).map(|i| format!("finding {i}")).collect();
        emit_capped(&mut out, Severity::Error, "code", "area", findings);
        assert_eq!(out.len(), CAP + 1);
        assert!(out.last().unwrap().message.contains("3 more"));
    }
}
