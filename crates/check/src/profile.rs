//! Statistical plausibility checks against a [`DatasetProfile`].

use crate::Diagnostic;
use dekg_datasets::{DatasetProfile, DatasetStats, DekgDataset};

/// Relative deviation past which a count is flagged.
const TOLERANCE: f64 = 0.25;

/// Density may drift further than raw counts before it is suspicious.
const DENSITY_FACTOR: f64 = 2.0;

/// Compares a dataset's degree/frequency statistics against a
/// [`DatasetProfile`] (a Table II row, possibly scaled) and warns on
/// wild deviations.
///
/// These are warnings, not errors: a loaded real split may legimately
/// differ from its generation target, but a synthetic dataset that
/// misses its own profile by more than `TOLERANCE` (25%) usually means the
/// wrong profile, seed, or scale factor was used.
pub fn validate_profile(dataset: &DekgDataset, profile: &DatasetProfile) -> Vec<Diagnostic> {
    let stats = DatasetStats::of(dataset);
    let mut out = Vec::new();
    let pct = |got: usize, want: usize| (got as f64 - want as f64) / want as f64 * 100.0;
    let mut count = |what: &str, got: usize, want: usize| {
        if want == 0 {
            return;
        }
        let dev = (got as f64 - want as f64).abs() / want as f64;
        if dev > TOLERANCE {
            out.push(Diagnostic::warning(
                "stat-deviation",
                None,
                "profile",
                format!(
                    "{what}: {got} vs profile target {want} ({:+.0}%, tolerance ±{:.0}%)",
                    pct(got, want),
                    TOLERANCE * 100.0
                ),
            ));
        }
    };
    count("G entities", stats.original.entities, profile.entities_g);
    count("G triples", stats.original.triples, profile.triples_g);
    count("G' entities", stats.emerging.entities, profile.entities_gp);
    count("G' triples", stats.emerging.triples, profile.triples_gp);

    // Relation *usage* may undershoot the space (rare relations can go
    // unsampled) but must never overshoot it.
    for (what, got, want) in [
        ("G", stats.original.relations, profile.relations_g),
        ("G'", stats.emerging.relations, profile.relations_gp),
    ] {
        if got > want {
            out.push(Diagnostic::warning(
                "stat-deviation",
                None,
                "profile",
                format!("{what} uses {got} distinct relations, more than the profile's {want}"),
            ));
        }
    }

    let density = stats.density();
    let target = profile.density_g();
    if density < target / DENSITY_FACTOR || density > target * DENSITY_FACTOR {
        out.push(Diagnostic::warning(
            "degree-profile",
            None,
            "profile",
            format!(
                "G density |T|/|E| is {density:.2}, profile expects ~{target:.2} (factor-{DENSITY_FACTOR:.0} band)"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dekg_datasets::{generate, RawKg, SplitKind, SynthConfig};

    #[test]
    fn generated_dataset_matches_its_own_profile() {
        let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.3);
        let d = generate(&SynthConfig::for_profile(profile, 9));
        let diags = validate_profile(&d, &profile);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wrong_profile_is_flagged() {
        let scaled = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.05);
        let d = generate(&SynthConfig::for_profile(scaled, 3));
        // Validate against the *unscaled* profile: counts are ~20x off.
        let full = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq);
        let diags = validate_profile(&d, &full);
        assert!(diags.iter().any(|x| x.code == "stat-deviation"), "{diags:?}");
        assert!(diags.iter().all(|x| x.severity == crate::Severity::Warning));
    }

    #[test]
    fn relation_overshoot_is_flagged() {
        let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.05);
        let d = generate(&SynthConfig::for_profile(profile, 3));
        let mut narrow = profile;
        narrow.relations_g = 1;
        narrow.relations_gp = 1;
        let diags = validate_profile(&d, &narrow);
        assert!(diags.iter().any(|x| x.message.contains("distinct relations")), "{diags:?}");
    }
}
