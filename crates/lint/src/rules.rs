//! The five workspace rules (L1–L5).
//!
//! Each rule is a pure function over one lexed [`SourceFile`]; the
//! registry in [`crate::registry`] pairs them with metadata, and the
//! red-fixture suite in `tests/` holds one known-bad snippet per rule.
//! See the "Static analysis" section of `DESIGN.md` for the rule
//! catalog and the justification-comment grammar.

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, Severity, SourceFile};

/// Crates bound by the bitwise-determinism contract
/// (`tests/parallel_determinism.rs`): L1 forbids order-dependent
/// iteration over hashed containers anywhere inside them. `serve` is
/// in scope because its HTTP responses promise byte-stability across
/// runs and thread counts — one hash-ordered iteration anywhere on the
/// response path would break that silently.
pub const CONTRACT_CRATES: &[&str] = &["kg", "gnn", "core", "eval", "tensor", "serve"];

/// Crates whose job is terminal output — L3 does not apply.
///
/// Exemption review (kept deliberately short): `cli` and `bench` print
/// *for* the user as their purpose. The `serve` daemon is **not**
/// exempt — a daemon's stdout/stderr belong to its operator's log
/// pipeline, so it reports through `dekg-obs` logging/metrics like any
/// library crate, and L3 enforces that.
pub const PRINT_EXEMPT_CRATES: &[&str] = &["cli", "bench"];

/// Modules holding numeric kernels: L5 forbids wall-clock reads and
/// RNG construction inside them (hermetic-kernel rule — randomness and
/// time must be injected by the caller, never materialized mid-kernel).
pub const KERNEL_MODULES: &[&str] = &[
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/interp.rs",
    "crates/gnn/src/rgcn.rs",
    "crates/gnn/src/encoder.rs",
    "crates/gnn/src/labeling.rs",
    "crates/core/src/gsm/",
    "crates/core/src/clrm/",
];

/// Fallible-input paths where L4 tolerates **zero** `.unwrap()` /
/// `.expect()` in non-test code — these parse external data and must
/// surface typed errors instead of dying.
pub const ZERO_UNWRAP_PATHS: &[&str] = &["crates/kg/src/io.rs", "crates/datasets/src/loader.rs"];

/// Per-crate `.unwrap()`/`.expect()` budgets for non-test library code.
///
/// This is a **ratchet**, not a whitelist: the budget equals the debt
/// measured when the crate was last touched. Going over fails the lint;
/// dropping under emits a notice telling you to lower the budget here.
/// Crates not listed have a budget of zero.
pub const UNWRAP_BUDGETS: &[(&str, usize)] = &[
    // Exact current debt: assert-adjacent uses on internal invariants
    // (ids minted by the same store, shapes checked upstream). The
    // ratchet only moves down — going over any number here is an
    // error, and dropping real sites should drop the budget with them.
    // Crates absent from this table have a budget of zero.
    ("tensor", 24),
    ("core", 1),
    ("datasets", 3),
    ("eval", 2),
    // `serve` is intentionally absent: the daemon shipped with zero
    // unwrap/expect debt (poisoned locks recover via
    // `unwrap_or_else(PoisonError::into_inner)`) and must stay there.
];

/// Methods whose call on a hashed container observes its unstable
/// iteration order.
const ORDERED_USE: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn diag(file: &SourceFile, rule: &'static str, line: u32, message: String) -> Diagnostic {
    Diagnostic { rule, path: file.rel.clone(), line, severity: Severity::Error, message }
}

/// Names in scope (this file) whose declared type or initializer is a
/// `HashMap`/`HashSet`. Tracking is lexical and file-wide — good enough
/// for the flat modules of this workspace; rename or justify on a
/// false positive.
fn hash_typed_names(file: &SourceFile) -> Vec<(String, &'static str)> {
    let toks = &file.lexed.tokens;
    let mut out: Vec<(String, &'static str)> = Vec::new();
    for (h, tok) in toks.iter().enumerate() {
        let container = match tok.text.as_str() {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            _ => continue,
        };
        if tok.kind != TokenKind::Ident || h == 0 {
            continue;
        }
        // Pattern A — `NAME : [&] [mut] [std :: collections ::] Hash…`
        // (let bindings with annotations, struct fields, fn params).
        let mut j = h - 1;
        while j > 0 && is_type_path_filler(&toks[j]) {
            j -= 1;
        }
        if toks[j].kind == TokenKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            push_unique(&mut out, &toks[j].text, container);
            continue;
        }
        // Pattern B — `let [mut] NAME = [std :: collections ::] Hash… ::`.
        let mut j = h - 1;
        while j > 0 && is_type_path_filler(&toks[j]) {
            j -= 1;
        }
        if toks[j].is_punct('=') && j >= 1 && toks[j - 1].kind == TokenKind::Ident {
            let is_let = j >= 2 && (toks[j - 2].is_ident("let") || toks[j - 2].is_ident("mut"));
            if is_let {
                push_unique(&mut out, &toks[j - 1].text, container);
            }
        }
    }
    out
}

fn push_unique(out: &mut Vec<(String, &'static str)>, name: &str, container: &'static str) {
    if !out.iter().any(|(n, _)| n == name) {
        out.push((name.to_owned(), container));
    }
}

/// Tokens that may sit between a binding name and the `HashMap` ident
/// inside a type path (`: &mut std::collections::HashMap<…>`).
fn is_type_path_filler(t: &Token) -> bool {
    t.is_punct(':')
        || t.is_punct('&')
        || t.is_punct('<')
        || t.is_ident("std")
        || t.is_ident("collections")
        || t.is_ident("mut")
        || t.is_ident("dyn")
        || t.is_ident("static")
}

/// **L1 — hash-iteration**: no order-dependent iteration over
/// `HashMap`/`HashSet` inside the determinism-contract crates. Keyed
/// lookups (`get`, `insert`, `entry`, `contains…`) stay legal;
/// iteration needs a `BTreeMap`/`BTreeSet`, an explicit sort, plus a
/// `// lint: sorted-ok — why` justification at the use site.
pub fn l1_hash_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(krate) = file.crate_name() else { return };
    if !CONTRACT_CRATES.contains(&krate) {
        return;
    }
    let tracked = hash_typed_names(file);
    if tracked.is_empty() {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let Some((_, container)) = tracked.iter().find(|(n, _)| *n == tok.text) else {
            continue;
        };
        if file.lexed.in_test_region(i) || file.lexed.justified(tok.line, "sorted-ok") {
            continue;
        }
        // `NAME . <ordered-use> (` — works for `self.NAME.…` too.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && ORDERED_USE.contains(&t.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let method = &toks[i + 2].text;
            out.push(diag(
                file,
                "L1",
                tok.line,
                format!(
                    "order-dependent `.{method}()` over {container}-typed `{name}` in \
                     determinism-contract crate `{krate}` — use a BTree container, sort \
                     first, or justify with `// lint: sorted-ok — <why>`",
                    name = tok.text,
                ),
            ));
            continue;
        }
        // `for … in [&] [mut] [self .] NAME {`
        if toks.get(i + 1).is_some_and(|t| t.is_punct('{')) && preceded_by_in(toks, i) {
            out.push(diag(
                file,
                "L1",
                tok.line,
                format!(
                    "order-dependent `for` loop over {container}-typed `{name}` in \
                     determinism-contract crate `{krate}` — use a BTree container, sort \
                     first, or justify with `// lint: sorted-ok — <why>`",
                    name = tok.text,
                ),
            ));
        }
    }
}

/// True when the identifier at `i` is the iterated expression of a
/// `for … in` loop (allowing `&`, `mut` and a `self.` prefix).
fn preceded_by_in(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    // Step over a `self .` prefix.
    if j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].is_ident("self") {
        j -= 2;
    }
    while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    j > 0 && toks[j - 1].is_ident("in")
}

/// **L2 — allow-justification**: every `#[allow(…)]` / `#![allow(…)]`
/// in the workspace must carry an explanatory comment on the same line
/// or the line directly above (the ROADMAP rule, mechanized).
pub fn l2_allow_justification(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_punct('#') {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !(toks.get(j).is_some_and(|t| t.is_punct('['))
            && toks.get(j + 1).is_some_and(|t| t.is_ident("allow")))
        {
            continue;
        }
        let line = tok.line;
        let here = file.lexed.line(line).comment;
        let above = if line > 1 { file.lexed.line(line - 1).comment } else { String::new() };
        if here.trim().is_empty() && above.trim().is_empty() {
            out.push(diag(
                file,
                "L2",
                line,
                "`#[allow(…)]` without a justification comment — say why the \
                 lint is wrong here, on this line or the line above"
                    .to_owned(),
            ));
        }
    }
}

/// **L3 — print-routing**: library crates must not write to
/// stdout/stderr directly; run output routes through `dekg-obs`
/// (`log_info!` & friends) so sinks and levels apply. `cli` and
/// `bench` are exempt (terminal output is their job), as are tests,
/// examples, and sites justified with `// lint: print-ok — <why>`.
pub fn l3_print_routing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.is_test_scope() {
        return;
    }
    if let Some(krate) = file.crate_name() {
        if PRINT_EXEMPT_CRATES.contains(&krate) {
            return;
        }
    }
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if !matches!(name, "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        if file.lexed.in_test_region(i) || file.lexed.justified(tok.line, "print-ok") {
            continue;
        }
        out.push(diag(
            file,
            "L3",
            tok.line,
            format!(
                "`{name}!` in library code — route through dekg-obs \
                 (`log_info!`/`log_warn!`) or justify with `// lint: print-ok — <why>`"
            ),
        ));
    }
}

/// Counts `.unwrap()` / `.expect(` calls in non-test code. Shared by
/// the per-file zero-path check and the workspace budget ratchet.
pub fn count_unwraps(file: &SourceFile) -> Vec<(u32, &'static str)> {
    let toks = &file.lexed.tokens;
    let mut sites = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let which = match tok.text.as_str() {
            "unwrap" => "unwrap",
            "expect" => "expect",
            _ => continue,
        };
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        if file.lexed.in_test_region(i) {
            continue;
        }
        sites.push((tok.line, which));
    }
    sites
}

/// **L4 — unwrap-budget** (per-file half): zero tolerance for
/// `.unwrap()`/`.expect()` in non-test code on the fallible-input
/// paths ([`ZERO_UNWRAP_PATHS`]). The per-crate budget ratchet runs at
/// workspace level in [`crate::lint_workspace`].
pub fn l4_unwrap_budget(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !ZERO_UNWRAP_PATHS.iter().any(|p| file.rel == *p) {
        return;
    }
    for (line, which) in count_unwraps(file) {
        out.push(diag(
            file,
            "L4",
            line,
            format!(
                "`.{which}()` on fallible-input path `{}` — parse errors here come \
                 from user data; surface a typed error through the CLI instead",
                file.rel
            ),
        ));
    }
}

/// **L5 — hermetic-kernel**: numeric kernel modules may not read the
/// wall clock or construct RNGs. Time belongs to the harness; RNG
/// state is injected by callers so a kernel's output is a pure
/// function of its inputs (the property every gradcheck, diff_check
/// and determinism test relies on).
pub fn l5_hermetic_kernel(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !KERNEL_MODULES.iter().any(|m| file.rel.starts_with(m)) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if file.lexed.in_test_region(i) || file.lexed.justified(tok.line, "hermetic-ok") {
            continue;
        }
        // `Instant::now` / `SystemTime::now`.
        if (tok.is_ident("Instant") || tok.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(
                file,
                "L5",
                tok.line,
                format!(
                    "`{}::now()` inside kernel module — kernels are timed by the \
                     harness, never from within",
                    tok.text
                ),
            ));
            continue;
        }
        // RNG construction by any spelling.
        if matches!(
            tok.text.as_str(),
            "thread_rng" | "from_entropy" | "seed_from_u64" | "from_seed" | "from_rng"
        ) {
            out.push(diag(
                file,
                "L5",
                tok.line,
                format!(
                    "RNG construction (`{}`) inside kernel module — accept `&mut impl Rng` \
                     from the caller so kernel output is a pure function of its inputs",
                    tok.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    #[test]
    fn l1_flags_tracked_iteration_and_respects_justification() {
        let src = "use std::collections::HashMap;\n\
                   struct S { index: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> u32 { s.index.values().sum() }\n\
                   // lint: sorted-ok — output folded through a commutative sum\n\
                   fn g(s: &S) -> u32 { s.index.values().sum() }\n";
        let diags = lint_source("crates/kg/src/fake.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "L1").count(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn rule_scope_lists_are_pinned() {
        // Scope changes to these lists are deliberate decisions; this
        // pin forces them through review (and the docs that cite the
        // lists — DESIGN.md, docs/OPERATIONS.md — along with them).
        assert_eq!(super::CONTRACT_CRATES, &["kg", "gnn", "core", "eval", "tensor", "serve"]);
        assert_eq!(super::PRINT_EXEMPT_CRATES, &["cli", "bench"]);
        assert!(
            super::UNWRAP_BUDGETS.iter().all(|(krate, _)| *krate != "serve"),
            "serve shipped with zero unwrap debt and must stay at the implicit zero budget"
        );
    }

    #[test]
    fn serve_is_contract_scoped_and_not_print_exempt() {
        let iterating = "use std::collections::HashMap;\n\
                         fn f(m: &HashMap<u32, u32>) -> usize { m.keys().count() }\n";
        let diags = lint_source("crates/serve/src/fake.rs", iterating);
        assert_eq!(diags.iter().filter(|d| d.rule == "L1").count(), 1);
        let printing = "fn f() { println!(\"hi\"); }\n";
        let diags = lint_source("crates/serve/src/fake.rs", printing);
        assert_eq!(diags.iter().filter(|d| d.rule == "L3").count(), 1);
    }

    #[test]
    fn l1_ignores_keyed_lookups_and_foreign_crates() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }\n";
        assert!(lint_source("crates/kg/src/fake.rs", src).is_empty());
        let iterating = "use std::collections::HashMap;\n\
                         fn f(m: &HashMap<u32, u32>) -> usize { m.keys().count() }\n";
        // `datasets` is not a contract crate.
        assert!(lint_source("crates/datasets/src/fake.rs", iterating)
            .iter()
            .all(|d| d.rule != "L1"));
    }

    #[test]
    fn l1_flags_for_loops_including_self_fields() {
        let src = "use std::collections::HashSet;\n\
                   struct S { seen: HashSet<u32> }\n\
                   impl S { fn f(&self) { for _x in &self.seen {} } }\n\
                   fn g(seen: &HashSet<u32>) { for _x in seen {} }\n";
        let diags = lint_source("crates/eval/src/fake.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "L1").count(), 2);
    }

    #[test]
    fn l2_requires_comment_same_line_or_above() {
        let bad = "#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        assert_eq!(lint_source("crates/kg/src/fake.rs", bad).len(), 1);
        let same_line =
            "#[allow(clippy::too_many_arguments)] // config structs come later\nfn f() {}\n";
        assert!(lint_source("crates/kg/src/fake.rs", same_line).is_empty());
        let above = "// mirrors the paper's 8-parameter signature\n#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        assert!(lint_source("crates/kg/src/fake.rs", above).is_empty());
    }

    #[test]
    fn l3_exempts_cli_bench_tests_and_justified_sites() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert_eq!(lint_source("crates/obs/src/fake.rs", src).len(), 1);
        assert!(lint_source("crates/cli/src/fake.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/bin/fake.rs", src).is_empty());
        assert!(lint_source("tests/fake.rs", src).is_empty());
        assert!(lint_source("examples/fake.rs", src).is_empty());
        let justified =
            "fn f() {\n    // lint: print-ok — this IS the stderr sink\n    eprintln!(\"x\");\n}\n";
        assert!(lint_source("crates/obs/src/fake.rs", justified).is_empty());
    }

    #[test]
    fn l4_zero_path_flags_only_non_test_sites() {
        let src = "fn f() { let _ = std::fs::read(\"x\").unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let diags = lint_source("crates/kg/src/io.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "L4").count(), 1);
        // Same code elsewhere: counted by the budget ratchet, no per-site error.
        assert!(lint_source("crates/kg/src/store.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_clock_and_rng_in_kernels_only() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n\
                   fn g(seed: u64) { let _r = ChaCha8Rng::seed_from_u64(seed); }\n";
        let diags = lint_source("crates/tensor/src/kernels.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "L5").count(), 2);
        assert!(lint_source("crates/tensor/src/optim.rs", src).iter().all(|d| d.rule != "L5"));
    }
}
