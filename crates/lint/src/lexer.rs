//! A minimal line-aware Rust token scanner.
//!
//! The rules in this crate are lexical: they match identifier/punct
//! sequences (`map . keys (`, `# [ allow`, `Instant :: now`) in
//! non-comment, non-string source text. A full parse would need `syn`,
//! which the offline workspace cannot vendor — and none of the rules
//! require type information a token stream cannot carry (see the
//! "Static analysis" section of `DESIGN.md` for the accepted
//! limitations).
//!
//! The scanner understands every Rust surface feature that could make
//! naive text matching lie:
//!
//! * line comments (captured per line, for justification directives),
//! * nested block comments,
//! * string / raw-string / byte-string / char literals,
//! * lifetimes vs. char literals (`'a` the lifetime never ends in `'`),
//! * `#[cfg(test)] mod … { }` regions, tracked by brace depth so rules
//!   can skip test-only code.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// A numeric literal (scanned as one blob; rules never inspect it).
    Number,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// The token text (single char for puncts).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for a punct with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Per-line side information the rules consult.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Concatenated text of `//` comments on this line (no `//`).
    pub comment: String,
    /// True when the line lies inside a `#[cfg(test)] mod … { }` region.
    pub in_test_region: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct Lexed {
    /// The token stream (comments and literals stripped).
    pub tokens: Vec<Token>,
    /// Index 0 is line 1. Always at least as long as the last token line.
    pub lines: Vec<LineInfo>,
}

impl Lexed {
    /// The side info for a 1-based line (default when out of range).
    pub fn line(&self, line: u32) -> LineInfo {
        self.lines.get(line as usize - 1).cloned().unwrap_or_default()
    }

    /// True when line `line` or the line above carries a `// lint: <tag>`
    /// justification directive with a non-empty reason after the tag.
    pub fn justified(&self, line: u32, tag: &str) -> bool {
        let has = |l: u32| -> bool {
            if l == 0 {
                return false;
            }
            let info = self.line(l);
            if let Some(pos) = info.comment.find("lint:") {
                let rest = info.comment[pos + "lint:".len()..].trim_start();
                if let Some(after) = rest.strip_prefix(tag) {
                    // Require an actual reason, not a bare tag.
                    return after.trim_start_matches([' ', '—', '-', ':']).trim().len() >= 3;
                }
            }
            false
        };
        has(line) || has(line.saturating_sub(1))
    }

    /// True when the token at `idx` is inside a test region.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.tokens.get(idx).is_some_and(|t| self.line(t.line).in_test_region)
    }
}

/// Lexes Rust source into tokens plus per-line comment/test-region info.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut lines: Vec<LineInfo> = vec![LineInfo::default(); src.lines().count().max(1)];
    let mut line: u32 = 1;
    let mut i = 0;

    let push_comment = |lines: &mut Vec<LineInfo>, line: u32, text: &str| {
        let idx = line as usize - 1;
        if idx >= lines.len() {
            lines.resize(idx + 1, LineInfo::default());
        }
        if !lines[idx].comment.is_empty() {
            lines[idx].comment.push(' ');
        }
        lines[idx].comment.push_str(text.trim());
    };

    while i < bytes.len() {
        // Decode the full char: a bare `bytes[i] as char` would misread
        // multi-byte UTF-8 (e.g. box-drawing chars in literals).
        let c = src[i..].chars().next().unwrap_or('\0');
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                push_comment(&mut lines, line, &src[start..end]);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte(bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident not followed by `'`.
                let after = bytes.get(i + 1).copied().unwrap_or(0) as char;
                if (after.is_alphabetic() || after == '_')
                    && bytes.get(i + 2).map_or(true, |&b| b != b'\'')
                {
                    i += 1; // skip the quote; the ident lexes next round
                } else {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                for ch in src[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Ident, text: src[start..i].to_owned(), line });
            }
            _ if c.is_ascii_digit() => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a float's `.` from eating a method call (`1.0.abs()`
                    // never appears in rule patterns; `0..n` must not glue).
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Number, text: String::new(), line });
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
                i += c.len_utf8();
            }
        }
    }

    mark_test_regions(&mut lines, &tokens);
    Lexed { tokens, lines }
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, br"…", b"…", br#"…"#  — but NOT a plain ident like
    // `rel` or `broadcast`: the char after the prefix must be " or #.
    let rest = &bytes[i..];
    matches!(
        rest,
        [b'r', b'"', ..]
            | [b'r', b'#', ..]
            | [b'b', b'"', ..]
            | [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', ..]
    )
}

fn skip_raw_or_byte(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Advance past the prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // Not actually a string (e.g. `b # attr` — impossible, but safe).
    }
    if hashes == 0 {
        return skip_string(bytes, i, line);
    }
    i += 1;
    // Raw string: ends at `"` followed by `hashes` hash marks; no escapes.
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Skips a `"…"` string starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Marks the line span of every `#[cfg(test)] mod … { }` region.
fn mark_test_regions(lines: &mut [LineInfo], tokens: &[Token]) {
    let mut k = 0;
    while k < tokens.len() {
        // Match `# [ cfg ( test ) ]` possibly with extra cfg args.
        if tokens[k].is_punct('#')
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(k + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(k + 4).is_some_and(|t| t.is_ident("test"))
        {
            // Find the `mod` that this attribute decorates, then its `{`.
            let mut j = k + 5;
            while j < tokens.len() && !tokens[j].is_ident("mod") {
                // Bail if we hit an item that is clearly not a module
                // (e.g. `#[cfg(test)] use …` or a cfg'd function).
                if tokens[j].is_ident("fn") || tokens[j].is_ident("use") {
                    break;
                }
                j += 1;
                if j - k > 12 {
                    break;
                }
            }
            if j < tokens.len() && tokens[j].is_ident("mod") {
                // Scan to the opening brace, then match depth.
                let mut b = j;
                while b < tokens.len() && !tokens[b].is_punct('{') {
                    b += 1;
                }
                let start_line = tokens[k].line;
                let mut depth = 0;
                let mut end_line = start_line;
                while b < tokens.len() {
                    if tokens[b].is_punct('{') {
                        depth += 1;
                    } else if tokens[b].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            end_line = tokens[b].line;
                            break;
                        }
                    }
                    b += 1;
                }
                if depth != 0 {
                    end_line = tokens.last().map_or(start_line, |t| t.line);
                }
                for l in start_line..=end_line {
                    if let Some(info) = lines.get_mut(l as usize - 1) {
                        info.in_test_region = true;
                    }
                }
                k = j;
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let lx = lex("let mut m = HashMap::new();");
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "mut", "m", "HashMap", "new"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lx = lex("let x = 1; // lint: sorted-ok — stable by construction\nfoo();\n");
        assert!(lx.line(1).comment.contains("sorted-ok"));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("sorted")));
        assert!(lx.justified(1, "sorted-ok"));
        assert!(lx.justified(2, "sorted-ok")); // line above counts
        assert!(!lx.justified(1, "print-ok"));
    }

    #[test]
    fn bare_tag_without_reason_is_not_justified() {
        let lx = lex("x(); // lint: sorted-ok\n");
        assert!(!lx.justified(1, "sorted-ok"));
    }

    #[test]
    fn strings_and_chars_do_not_tokenize() {
        let lx =
            lex("let s = \"HashMap.iter()\"; let c = '\\n'; let l: &'static str = r#\"keys()\"#;");
        assert!(!lx.tokens.iter().any(|t| t.is_ident("iter")));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("keys")));
        assert!(lx.tokens.iter().any(|t| t.is_ident("static"))); // lifetime ident survives
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let lx = lex("/* outer /* inner */ still */ fn f() {}\nfn g() {}\n");
        let f = lx.tokens.iter().find(|t| t.is_ident("f")).unwrap();
        let g = lx.tokens.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(f.line, 1);
        assert_eq!(g.line, 2);
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lx = lex(src);
        assert!(!lx.line(1).in_test_region);
        assert!(lx.line(2).in_test_region);
        assert!(lx.line(4).in_test_region);
        assert!(!lx.line(6).in_test_region);
    }

    #[test]
    fn cfg_test_on_fn_does_not_swallow_file() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn real() {}\n";
        let lx = lex(src);
        assert!(!lx.line(3).in_test_region);
    }

    #[test]
    fn range_dots_do_not_glue_to_numbers() {
        let lx = lex("for i in 0..n { }");
        assert!(lx.tokens.iter().any(|t| t.is_ident("n")));
    }
}
