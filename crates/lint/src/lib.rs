#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # dekg-lint
//!
//! A source-level lint engine over the DEKG-ILP workspace — the static
//! counterpart to the *dynamic* invariant checks this repository
//! already runs (the bitwise-determinism tests, the gradcheck suite,
//! the zero-allocation sanitizer in the perf bin). The determinism
//! contract is enforced after the fact by `tests/parallel_determinism.rs`;
//! these rules reject the source patterns that break it before a test
//! ever runs:
//!
//! | rule | name                | what it forbids |
//! |------|---------------------|-----------------|
//! | L1   | hash-iteration      | order-dependent iteration over `HashMap`/`HashSet` in the determinism-contract crates |
//! | L2   | allow-justification | `#[allow(…)]` without an explanatory comment |
//! | L3   | print-routing       | `println!`/`eprintln!` in library crates (route through `dekg-obs`) |
//! | L4   | unwrap-budget       | `.unwrap()`/`.expect()` over per-crate budgets; zero on fallible-input paths |
//! | L5   | hermetic-kernel     | `Instant::now` / RNG construction inside kernel modules |
//!
//! Run it as `dekg lint` (wired into `scripts/check.sh`). Rules are
//! registered in [`registry`] with a two-way fixture coverage audit
//! (every rule has a red fixture, every fixture names a rule) modeled
//! on the gradcheck registry in `dekg-tensor`.
//!
//! False positives are silenced *at the site*, with a reason, using the
//! justification grammar `// lint: <tag> — <reason>`; bare tags are
//! rejected. See `DESIGN.md` § "Static analysis".

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed (or justified in source); fails `dekg lint`.
    Error,
    /// Informational (e.g. a budget that can be ratcheted down).
    Notice,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`"L1"` … `"L5"`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line (0 for crate-level findings).
    pub line: u32,
    /// Error or notice.
    pub severity: Severity,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Notice => "notice",
        };
        if self.line == 0 {
            write!(f, "{}: {sev}[{}]: {}", self.path, self.rule, self.message)
        } else {
            write!(f, "{}:{}: {sev}[{}]: {}", self.path, self.line, self.rule, self.message)
        }
    }
}

/// A lexed source file plus its place in the workspace.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The token stream and per-line info.
    pub lexed: lexer::Lexed,
}

impl SourceFile {
    /// Lexes `src` as the file at workspace-relative path `rel`.
    pub fn parse(rel: &str, src: &str) -> Self {
        SourceFile { rel: rel.to_owned(), lexed: lexer::lex(src) }
    }

    /// The crate name for `crates/<name>/…` paths (`None` for shims,
    /// top-level tests and examples).
    pub fn crate_name(&self) -> Option<&str> {
        self.rel.strip_prefix("crates/").and_then(|r| r.split('/').next())
    }

    /// True for whole-file test/demo scopes: top-level `tests/` and
    /// `examples/`, per-crate `tests/` and `benches/` directories.
    pub fn is_test_scope(&self) -> bool {
        self.rel.starts_with("tests/")
            || self.rel.starts_with("examples/")
            || self.rel.contains("/tests/")
            || self.rel.contains("/benches/")
    }
}

/// One registered rule.
pub struct Rule {
    /// Stable id (`"L1"`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description for `dekg lint` output and docs.
    pub summary: &'static str,
    /// The per-file check.
    pub check: fn(&SourceFile, &mut Vec<Diagnostic>),
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule").field("id", &self.id).field("name", &self.name).finish()
    }
}

/// The rule registry. The red-fixture suite audits this two-way: every
/// rule here must have a failing fixture under `tests/fixtures/`, and
/// every fixture must name a rule that exists.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            id: "L1",
            name: "hash-iteration",
            summary: "no order-dependent HashMap/HashSet iteration in determinism-contract crates",
            check: rules::l1_hash_iteration,
        },
        Rule {
            id: "L2",
            name: "allow-justification",
            summary: "every #[allow(…)] carries a justification comment",
            check: rules::l2_allow_justification,
        },
        Rule {
            id: "L3",
            name: "print-routing",
            summary: "no println!/eprintln! outside cli/bench — route through dekg-obs",
            check: rules::l3_print_routing,
        },
        Rule {
            id: "L4",
            name: "unwrap-budget",
            summary: "unwrap/expect ratcheted per crate, zero on fallible-input paths",
            check: rules::l4_unwrap_budget,
        },
        Rule {
            id: "L5",
            name: "hermetic-kernel",
            summary: "no Instant::now or RNG construction inside kernel modules",
            check: rules::l5_hermetic_kernel,
        },
    ]
}

/// Runs every registered per-file rule over one source text. Used by
/// the fixture tests and the workspace walk.
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, src);
    let mut out = Vec::new();
    for rule in registry() {
        (rule.check)(&file, &mut out);
    }
    out
}

/// A crate's standing against its L4 unwrap budget.
#[derive(Debug, Clone)]
pub struct BudgetStatus {
    /// Crate name under `crates/`.
    pub crate_name: String,
    /// Non-test `.unwrap()`/`.expect()` sites counted.
    pub used: usize,
    /// The budget from [`rules::UNWRAP_BUDGETS`] (0 when unlisted).
    pub budget: usize,
}

/// Everything `dekg lint` reports.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-crate unwrap budget standings (only crates with any debt or
    /// budget).
    pub budgets: Vec<BudgetStatus>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Renders the full report (one diagnostic per line, then the
    /// budget table and a summary line).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        if !self.budgets.is_empty() {
            let _ = writeln!(out, "unwrap budgets (L4 ratchet; non-test library code):");
            for b in &self.budgets {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>3} used / {:>3} budgeted",
                    b.crate_name, b.used, b.budget
                );
            }
        }
        let _ = writeln!(
            out,
            "dekg lint: {} files, {} rules, {} errors, {} notices",
            self.files_scanned,
            registry().len(),
            self.errors(),
            self.diagnostics.len() - self.errors(),
        );
        out
    }
}

/// Walks the workspace at `root` and runs every rule, including the
/// workspace-level L4 budget ratchet.
///
/// Scanned: `crates/*/src`, `crates/*/tests`, `crates/*/benches`,
/// `shims/*/src`, top-level `tests/` and `examples/`. Directories named
/// `fixtures` or `target` are skipped (fixtures are deliberately bad).
///
/// # Errors
/// On filesystem failures while walking or reading.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for sub in ["crates", "shims", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)?;
        let file = SourceFile::parse(&rel, &src);
        scanned += 1;
        for rule in registry() {
            (rule.check)(&file, &mut diagnostics);
        }
        // L4 budget tally: library sources of crates/* only.
        if let Some(krate) = file.crate_name() {
            if file.rel.contains("/src/") && !file.is_test_scope() && krate != "bench" {
                let n = rules::count_unwraps(&file).len();
                if n > 0 {
                    match counts.iter_mut().find(|(k, _)| k == krate) {
                        Some((_, c)) => *c += n,
                        None => counts.push((krate.to_owned(), n)),
                    }
                }
            }
        }
    }

    // The ratchet: over budget is an error, under budget is a notice
    // prompting you to lower the number in `rules::UNWRAP_BUDGETS`.
    let mut budgets = Vec::new();
    let budget_of =
        |k: &str| rules::UNWRAP_BUDGETS.iter().find(|(n, _)| *n == k).map_or(0, |&(_, b)| b);
    let mut names: Vec<String> = counts.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in rules::UNWRAP_BUDGETS {
        if !names.iter().any(|n| n == k) {
            names.push((*k).to_owned());
        }
    }
    names.sort();
    for name in names {
        let used = counts.iter().find(|(k, _)| *k == name).map_or(0, |&(_, c)| c);
        let budget = budget_of(&name);
        if used == 0 && budget == 0 {
            continue;
        }
        if used > budget {
            diagnostics.push(Diagnostic {
                rule: "L4",
                path: format!("crates/{name}"),
                line: 0,
                severity: Severity::Error,
                message: format!(
                    "crate `{name}` has {used} non-test `.unwrap()`/`.expect()` sites, \
                     over its budget of {budget} — convert the new ones to typed errors \
                     (budgets ratchet down, never up)"
                ),
            });
        } else if used < budget {
            diagnostics.push(Diagnostic {
                rule: "L4",
                path: format!("crates/{name}"),
                line: 0,
                severity: Severity::Notice,
                message: format!(
                    "crate `{name}` uses {used} of {budget} budgeted unwraps — \
                     ratchet the budget down in dekg-lint's UNWRAP_BUDGETS"
                ),
            });
        }
        budgets.push(BudgetStatus { crate_name: name, used, budget });
    }

    diagnostics.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(LintReport { diagnostics, files_scanned: scanned, budgets })
}

/// Locates the workspace root: `dir` itself or the nearest ancestor
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = registry().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len(), "duplicate rule ids");
        assert_eq!(ids, ["L1", "L2", "L3", "L4", "L5"]);
    }

    #[test]
    fn diagnostic_renders_with_and_without_line() {
        let d = Diagnostic {
            rule: "L3",
            path: "crates/kg/src/io.rs".into(),
            line: 7,
            severity: Severity::Error,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "crates/kg/src/io.rs:7: error[L3]: m");
        let c = Diagnostic { line: 0, severity: Severity::Notice, ..d };
        assert_eq!(c.to_string(), "crates/kg/src/io.rs: notice[L3]: m");
    }

    #[test]
    fn crate_name_and_scopes() {
        let f = SourceFile::parse("crates/kg/src/io.rs", "");
        assert_eq!(f.crate_name(), Some("kg"));
        assert!(!f.is_test_scope());
        assert!(SourceFile::parse("tests/end_to_end.rs", "").is_test_scope());
        assert!(SourceFile::parse("crates/lint/tests/red_fixtures.rs", "").is_test_scope());
        assert_eq!(SourceFile::parse("shims/rayon/src/lib.rs", "").crate_name(), None);
    }

    #[test]
    fn clean_source_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&0) }\n";
        assert!(lint_source("crates/kg/src/fake.rs", src).is_empty());
    }
}
