//! The red-fixture suite: every lint rule must catch its known-bad
//! fixture (golden diagnostics, byte-compared), and the registry and
//! fixture set must cover each other exactly — the same two-way audit
//! the gradcheck registry runs over `ALL_OPS`.
//!
//! Fixtures live in `tests/fixtures/` (skipped by the workspace walker)
//! and are parsed, never compiled. Each is linted under a *virtual*
//! path choosing the scope that arms its rule — e.g. the L1 fixture
//! pretends to live in `crates/kg/src/`, a determinism-contract crate.

use dekg_lint::{lint_source, registry, Severity};

/// rule id → (fixture file, virtual workspace path it is linted under).
const FIXTURES: &[(&str, &str, &str)] = &[
    ("L1", "l1_hash_iteration.rs", "crates/kg/src/fixture.rs"),
    ("L2", "l2_allow_justification.rs", "crates/obs/src/fixture.rs"),
    ("L3", "l3_print_routing.rs", "crates/eval/src/fixture.rs"),
    ("L4", "l4_unwrap_budget.rs", "crates/kg/src/io.rs"),
    ("L5", "l5_hermetic_kernel.rs", "crates/tensor/src/kernels.rs"),
];

fn fixture_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(file)
}

/// Every rule has a fixture, every fixture names a registered rule —
/// adding a rule without a red test (or a stale fixture) fails here.
#[test]
fn registry_and_fixtures_cover_each_other() {
    let rule_ids: Vec<&str> = registry().iter().map(|r| r.id).collect();
    for rule in registry() {
        assert!(
            FIXTURES.iter().any(|(id, _, _)| *id == rule.id),
            "rule {} ({}) has no red fixture in tests/fixtures/",
            rule.id,
            rule.name
        );
    }
    for (id, file, _) in FIXTURES {
        assert!(rule_ids.contains(id), "fixture {file} names unregistered rule {id}");
        assert!(fixture_path(file).is_file(), "fixture file {file} is missing");
    }
}

/// Each fixture must produce error-severity diagnostics from exactly
/// its rule, matching the golden `.expected` transcript byte-for-byte.
#[test]
fn fixtures_produce_golden_diagnostics() {
    for (id, file, virtual_path) in FIXTURES {
        let src = std::fs::read_to_string(fixture_path(file))
            .unwrap_or_else(|e| panic!("read fixture {file}: {e}"));
        let diags = lint_source(virtual_path, &src);
        assert!(
            diags.iter().any(|d| d.rule == *id && d.severity == Severity::Error),
            "fixture {file} produced no {id} error; got: {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.rule == *id),
            "fixture {file} tripped rules other than {id}: {diags:?}"
        );
        let rendered: String = diags.iter().map(|d| format!("{d}\n")).collect();
        let expected_file = fixture_path(&format!("{}.expected", file.trim_end_matches(".rs")));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&expected_file, &rendered).expect("write golden transcript");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_file)
            .unwrap_or_else(|e| panic!("read golden transcript {}: {e}", expected_file.display()));
        assert_eq!(
            rendered,
            expected,
            "fixture {file}: diagnostics drifted from the golden transcript \
             ({}) — update it if the change is intentional",
            expected_file.display()
        );
    }
}

/// The justified variants inside each fixture must NOT be flagged —
/// one diagnostic per deliberate violation, none for the legal code.
#[test]
fn justified_variants_stay_clean() {
    // The L1 fixture contains one violation, one justified iteration
    // and one keyed lookup; exactly one diagnostic may come back.
    let src = std::fs::read_to_string(fixture_path("l1_hash_iteration.rs")).expect("fixture");
    assert_eq!(lint_source("crates/kg/src/fixture.rs", &src).len(), 1);
    // Outside the determinism-contract crates the same source is legal.
    assert!(lint_source("crates/cli/src/fixture.rs", &src).is_empty());

    // The L3 fixture's justified print is silent; bench/cli are exempt.
    let src = std::fs::read_to_string(fixture_path("l3_print_routing.rs")).expect("fixture");
    assert_eq!(lint_source("crates/eval/src/fixture.rs", &src).len(), 2);
    assert!(lint_source("crates/cli/src/fixture.rs", &src).is_empty());

    // The L4 fixture is only hot on zero-unwrap paths.
    let src = std::fs::read_to_string(fixture_path("l4_unwrap_budget.rs")).expect("fixture");
    assert!(lint_source("crates/baselines/src/fixture.rs", &src).is_empty());

    // The L5 fixture is legal outside kernel modules.
    let src = std::fs::read_to_string(fixture_path("l5_hermetic_kernel.rs")).expect("fixture");
    assert!(lint_source("crates/datasets/src/fixture.rs", &src).is_empty());
}
