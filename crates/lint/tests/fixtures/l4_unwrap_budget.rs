//! RED fixture for rule L4 (unwrap-budget): `.unwrap()`/`.expect()` on
//! a fallible-input path. Linted as if it lived at
//! `crates/kg/src/io.rs` (a zero-unwrap path). Never compiled — parsed
//! only.

pub fn read_all(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

pub fn first_line(text: &str) -> &str {
    text.lines().next().expect("at least one line")
}
