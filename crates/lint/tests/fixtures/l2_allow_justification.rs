//! RED fixture for rule L2 (allow-justification): an `#[allow(…)]`
//! with no explanatory comment. Never compiled — parsed only.

#[allow(dead_code)]
fn unjustified() {}

// This one is fine: the comment above says why.
#[allow(dead_code)]
fn justified() {}
