//! RED fixture for rule L3 (print-routing): printing from library code.
//! Linted as if it lived at `crates/eval/src/fixture.rs`. Never
//! compiled — parsed only.

pub fn report(x: f64) {
    println!("mrr = {x}");
}

pub fn warn_direct(msg: &str) {
    eprintln!("warning: {msg}");
}

pub fn justified(msg: &str) {
    // lint: print-ok — fixture demonstrating a justified sink
    println!("{msg}");
}
