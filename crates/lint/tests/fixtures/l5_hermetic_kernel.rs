//! RED fixture for rule L5 (hermetic-kernel): wall-clock reads and RNG
//! construction inside a kernel module. Linted as if it lived at
//! `crates/tensor/src/kernels.rs`. Never compiled — parsed only.

pub fn timed_matmul(a: &[f32], b: &[f32]) -> f64 {
    let start = std::time::Instant::now();
    let _ = (a.len(), b.len());
    start.elapsed().as_secs_f64()
}

pub fn noisy_init(out: &mut [f32]) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    for v in out.iter_mut() {
        *v = rng.random::<f32>();
    }
}
