//! RED fixture for rule L1 (hash-iteration): iterating a HashMap in a
//! determinism-contract crate. Linted as if it lived at
//! `crates/kg/src/fixture.rs`. Never compiled — parsed only.

use std::collections::{HashMap, HashSet};

pub struct Index {
    by_head: HashMap<u32, Vec<u32>>,
}

pub fn degree_sum(idx: &Index) -> usize {
    let mut total = 0;
    for (_, v) in idx.by_head.iter() {
        total += v.len();
    }
    total
}

pub fn collect_seen(seen: HashSet<u32>) -> Vec<u32> {
    // Justified iteration is legal:
    let mut sorted: Vec<u32> = seen.iter().copied().collect(); // lint: sorted-ok — sorted on the next line
    sorted.sort_unstable();
    sorted
}

pub fn lookup(idx: &Index, k: u32) -> Option<&Vec<u32>> {
    idx.by_head.get(&k) // keyed lookups stay legal
}
