//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack.

use dekg::kg::bfs::{bounded_distances, UNREACHED};
use dekg::prelude::*;
use dekg::tensor::{Graph, ParamStore, Tensor};
use proptest::prelude::*;

/// Strategy: a random small triple set over bounded universes.
fn triples(max_e: u32, max_r: u32) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0..max_e, 0..max_r, 0..max_e), 1..60)
        .prop_map(|v| v.into_iter().map(|(h, r, t)| Triple::from_raw(h, r, t)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_roundtrips_membership(ts in triples(20, 5)) {
        let store = TripleStore::from_triples(ts.clone());
        for t in &ts {
            prop_assert!(store.contains(t));
        }
        prop_assert!(store.len() <= ts.len());
        // Degree sums equal 2·|T| minus loop corrections.
        let loops = store.triples().iter().filter(|t| t.is_loop()).count();
        let degree_sum: usize = store.entities().iter().map(|&e| store.degree(e)).sum();
        prop_assert_eq!(degree_sum, 2 * store.len() - loops);
    }

    #[test]
    fn adjacency_is_symmetric(ts in triples(16, 4)) {
        let store = TripleStore::from_triples(ts);
        let adj = Adjacency::from_store(&store, 16);
        for e in 0..16u32 {
            let e = EntityId(e);
            for n in adj.neighbors(e) {
                // The reverse entry must exist on the neighbor's side.
                let back = adj
                    .neighbors(n.entity)
                    .iter()
                    .any(|m| m.entity == e && m.rel == n.rel);
                prop_assert!(back, "asymmetric adjacency at {e}");
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_steps(ts in triples(16, 3)) {
        let store = TripleStore::from_triples(ts);
        let adj = Adjacency::from_store(&store, 16);
        let d = bounded_distances(&adj, EntityId(0), 16, None);
        prop_assert_eq!(d[0], 0);
        // Every reached node's distance is 1 more than some neighbor's.
        for (i, &di) in d.iter().enumerate() {
            if di > 0 {
                let has_parent = adj
                    .neighbors(EntityId(i as u32))
                    .iter()
                    .any(|n| d[n.entity.index()] == di - 1);
                prop_assert!(has_parent, "node {i} at distance {di} has no parent");
            }
        }
        // Neighbors of reached nodes differ by at most 1.
        for (i, &di) in d.iter().enumerate() {
            if di == UNREACHED { continue; }
            for n in adj.neighbors(EntityId(i as u32)) {
                let dn = d[n.entity.index()];
                prop_assert!(dn != UNREACHED && (dn - di).abs() <= 1);
            }
        }
    }

    #[test]
    fn subgraph_endpoints_always_first(ts in triples(12, 3), h in 0..12u32, t in 0..12u32) {
        let store = TripleStore::from_triples(ts);
        let adj = Adjacency::from_store(&store, 12);
        let ex = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union);
        let sg = ex.extract(EntityId(h), EntityId(t), None);
        prop_assert_eq!(sg.nodes[0], EntityId(h));
        if h != t {
            prop_assert_eq!(sg.nodes[1], EntityId(t));
        }
        // Edges reference valid local indices; distances within bounds.
        for e in &sg.edges {
            prop_assert!((e.src as usize) < sg.num_nodes());
            prop_assert!((e.dst as usize) < sg.num_nodes());
        }
        for u in 0..sg.num_nodes() {
            let (dh, dt) = sg.label(u);
            prop_assert!((-1..=2).contains(&dh));
            prop_assert!((-1..=2).contains(&dt));
            // Union mode keeps only nodes reached from at least one side
            // (endpoints exempt).
            if u > 1 {
                prop_assert!(dh != UNREACHED || dt != UNREACHED);
            }
        }
    }

    #[test]
    fn intersection_subgraph_is_subset_of_union(ts in triples(12, 3), h in 0..12u32, t in 0..12u32) {
        let store = TripleStore::from_triples(ts);
        let adj = Adjacency::from_store(&store, 12);
        let uni = SubgraphExtractor::new(&adj, 2, ExtractionMode::Union)
            .extract(EntityId(h), EntityId(t), None);
        let int = SubgraphExtractor::new(&adj, 2, ExtractionMode::Intersection)
            .extract(EntityId(h), EntityId(t), None);
        prop_assert!(int.num_nodes() <= uni.num_nodes());
        for n in &int.nodes {
            prop_assert!(uni.nodes.contains(n));
        }
    }

    #[test]
    fn component_tables_count_exactly(ts in triples(10, 4)) {
        let store = TripleStore::from_triples(ts);
        let tables = ComponentTable::from_store(&store, 10, 4);
        // Total count over all entities = 2·|T| (each triple contributes
        // one head-side and one tail-side count).
        let total: u32 = (0..10u32).map(|e| tables.row(EntityId(e)).total()).sum();
        prop_assert_eq!(total as usize, 2 * store.len());
    }

    #[test]
    fn rank_of_is_within_bounds(scores in prop::collection::vec(-1e3f32..1e3, 0..50), s in -1e3f32..1e3) {
        let r = dekg::eval::rank_of(s, &scores);
        prop_assert!(r >= 1.0);
        prop_assert!(r <= scores.len() as f64 + 1.0);
    }

    #[test]
    fn autograd_linear_matches_analytic(data in prop::collection::vec(-2.0f32..2.0, 6)) {
        // f(w) = sum(c * w) has gradient c exactly.
        let mut ps = ParamStore::new();
        let w = ps.insert("w", Tensor::from_vec([6], data.clone()));
        let c: Vec<f32> = (0..6).map(|i| (i as f32) - 2.5).collect();
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let cv = g.constant(Tensor::from_vec([6], c.clone()));
        let prod = g.mul(wv, cv);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        let grad = grads.get(w).unwrap();
        for (a, b) in grad.data().iter().zip(&c) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn negative_sampler_never_returns_known_positive_when_space_allows(
        ts in triples(8, 2),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let store = TripleStore::from_triples(ts);
        if store.len() >= 8 * 8 { return Ok(()); } // saturated space
        let stores = vec![&store];
        let sampler = NegativeSampler::new(0..8, stores);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        if let Some(&pos) = store.triples().first() {
            for _ in 0..20 {
                let neg = sampler.corrupt(&pos, &mut rng);
                // Either it's unknown, or the sampler exhausted retries
                // (only possible in pathologically dense graphs, which
                // the size guard above excludes for rel 0/1 corruption
                // only probabilistically — so just require `neg != pos`).
                prop_assert!(neg != pos);
            }
        }
    }

    #[test]
    fn metrics_merge_associative(ranks in prop::collection::vec(1.0f64..100.0, 1..40), split in 1usize..39) {
        use dekg::eval::RankAccumulator;
        let split = split.min(ranks.len());
        let mut whole = RankAccumulator::new();
        for &r in &ranks { whole.push(r); }
        let mut left = RankAccumulator::new();
        let mut right = RankAccumulator::new();
        for &r in &ranks[..split] { left.push(r); }
        for &r in &ranks[split..] { right.push(r); }
        left.merge(&right);
        let a = whole.finish();
        let b = left.finish();
        prop_assert!((a.mrr - b.mrr).abs() < 1e-12);
        prop_assert_eq!(a.count, b.count);
    }
}
