//! Parallel == serial, bitwise.
//!
//! The parallel hot paths — batch subgraph extraction, negative
//! sampling / epoch assembly, and the ranking protocol — all promise
//! results that are a pure function of their inputs and seeds,
//! independent of the worker thread count. These tests pin that
//! contract on the tiny fixture: every comparison is exact equality,
//! not a tolerance.

use dekg::prelude::*;
use dekg_datasets::{assemble_epoch, tiny_fixture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool")
}

#[test]
fn batch_extraction_matches_serial() {
    let data = tiny_fixture(3);
    let graph = InferenceGraph::from_dataset(&data);
    let links: Vec<(EntityId, EntityId, Option<Triple>)> = data
        .test_enclosing
        .iter()
        .chain(&data.test_bridging)
        .map(|t| (t.head, t.tail, None))
        .collect();
    let extractor = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Union);

    let serial: Vec<Subgraph> =
        pool(1).install(|| links.iter().map(|&(h, t, ex)| extractor.extract(h, t, ex)).collect());
    let parallel = pool(4).install(|| extractor.extract_batch(&links));
    assert_eq!(serial, parallel);
}

#[test]
fn negative_sampling_matches_serial() {
    let data = tiny_fixture(4);
    let sampler = NegativeSampler::new(
        0..data.num_original_entities as u32,
        vec![&data.original, &data.emerging],
    );
    let positives = data.original.triples();

    let serial = pool(1).install(|| assemble_epoch(positives, 8, 2, &sampler, 0xA11CE));
    let parallel = pool(4).install(|| assemble_epoch(positives, 8, 2, &sampler, 0xA11CE));
    assert_eq!(serial, parallel);
}

#[test]
fn eval_ranking_matches_serial() {
    let data = tiny_fixture(5);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model =
        DekgIlp::new(DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() }, &data, &mut rng);
    model.fit(&data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));

    let mut protocol = ProtocolConfig::sampled(20);
    protocol.seed = 9;
    protocol.threads = 1;
    let serial = evaluate(&model, &graph, &data, &mix, &protocol);
    protocol.threads = 4;
    let parallel = evaluate(&model, &graph, &data, &mix, &protocol);

    assert_eq!(serial.overall, parallel.overall);
    assert_eq!(serial.enclosing, parallel.enclosing);
    assert_eq!(serial.bridging, parallel.bridging);
    assert_eq!(serial.by_task, parallel.by_task);
}

#[test]
fn training_matches_serial() {
    // The full training loop — epoch assembly, extraction, autograd,
    // optimizer — under different pool sizes from the same seed.
    let data = tiny_fixture(6);
    let run = |threads: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model =
            DekgIlp::new(DekgIlpConfig { epochs: 2, ..DekgIlpConfig::quick() }, &data, &mut rng);
        let report = pool(threads).install(|| model.fit(&data, &mut rng));
        (report.initial_loss, report.final_loss)
    };
    assert_eq!(run(1), run(4));
}
