//! Parallel == serial, bitwise.
//!
//! The parallel hot paths — batch subgraph extraction, negative
//! sampling / epoch assembly, and the ranking protocol — all promise
//! results that are a pure function of their inputs and seeds,
//! independent of the worker thread count. These tests pin that
//! contract on the tiny fixture: every comparison is exact equality,
//! not a tolerance.

use dekg::prelude::*;
use dekg_datasets::{assemble_epoch, tiny_fixture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool")
}

/// The metrics registry and JSONL sinks are process-global, and cargo
/// runs this binary's tests on parallel threads — every test below
/// takes this lock so `dekg_obs::reset()` in one test cannot shear a
/// snapshot comparison in another.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn batch_extraction_matches_serial() {
    let _obs = obs_lock();
    let data = tiny_fixture(3);
    let graph = InferenceGraph::from_dataset(&data);
    let links: Vec<(EntityId, EntityId, Option<Triple>)> = data
        .test_enclosing
        .iter()
        .chain(&data.test_bridging)
        .map(|t| (t.head, t.tail, None))
        .collect();
    let extractor = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Union);

    let serial: Vec<Subgraph> =
        pool(1).install(|| links.iter().map(|&(h, t, ex)| extractor.extract(h, t, ex)).collect());
    let parallel = pool(4).install(|| extractor.extract_batch(&links));
    assert_eq!(serial, parallel);
}

#[test]
fn negative_sampling_matches_serial() {
    let _obs = obs_lock();
    let data = tiny_fixture(4);
    let sampler = NegativeSampler::new(
        0..data.num_original_entities as u32,
        vec![&data.original, &data.emerging],
    );
    let positives = data.original.triples();

    let serial = pool(1).install(|| assemble_epoch(positives, 8, 2, &sampler, 0xA11CE));
    let parallel = pool(4).install(|| assemble_epoch(positives, 8, 2, &sampler, 0xA11CE));
    assert_eq!(serial, parallel);
}

#[test]
fn eval_ranking_matches_serial() {
    let _obs = obs_lock();
    let data = tiny_fixture(5);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model =
        DekgIlp::new(DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() }, &data, &mut rng);
    model.fit(&data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));

    let mut protocol = ProtocolConfig::sampled(20);
    protocol.seed = 9;
    protocol.threads = 1;
    let serial = evaluate(&model, &graph, &data, &mix, &protocol);
    protocol.threads = 4;
    let parallel = evaluate(&model, &graph, &data, &mix, &protocol);

    assert_eq!(serial.overall, parallel.overall);
    assert_eq!(serial.enclosing, parallel.enclosing);
    assert_eq!(serial.bridging, parallel.bridging);
    assert_eq!(serial.by_task, parallel.by_task);
}

#[test]
fn training_matches_serial() {
    let _obs = obs_lock();
    // The full training loop — epoch assembly, extraction, autograd,
    // optimizer — under different pool sizes from the same seed.
    let data = tiny_fixture(6);
    let run = |threads: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model =
            DekgIlp::new(DekgIlpConfig { epochs: 2, ..DekgIlpConfig::quick() }, &data, &mut rng);
        let report = pool(threads).install(|| model.fit(&data, &mut rng));
        (report.initial_loss, report.final_loss)
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn metrics_are_thread_count_invariant() {
    // The observability contract: every metric *value* — counters,
    // gauges, histogram buckets — is a pure function of the run's
    // inputs and seeds, independent of the worker thread count.
    let _obs = obs_lock();
    let data = tiny_fixture(7);
    let run = |threads: usize| -> dekg_obs::MetricsSnapshot {
        dekg_obs::reset();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut model =
            DekgIlp::new(DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() }, &data, &mut rng);
        pool(threads).install(|| model.fit(&data, &mut rng));
        let graph = InferenceGraph::from_dataset(&data);
        let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
        let mut protocol = ProtocolConfig::sampled(10);
        protocol.seed = 9;
        protocol.threads = threads;
        evaluate(&model, &graph, &data, &mix, &protocol);
        dekg_obs::metrics_snapshot()
    };
    let serial = run(1);
    // Sanity: the instrumented paths actually fired.
    assert!(serial.counters["dekg_kg_extractions_total"] > 0);
    assert!(serial.counters["dekg_neg_corruptions_total"] > 0);
    assert!(serial.counters["dekg_eval_queries_total"] > 0);
    assert!(serial.counters["dekg_train_steps_total"] > 0);
    assert!(serial.histograms["dekg_kg_subgraph_nodes"].count > 0);
    let parallel = run(4);
    // Bitwise-equal snapshots: counters, gauges and every histogram
    // bucket. (Wall-clock lives in spans, not in the registry.)
    // Compare per-entry first for a readable failure.
    for (name, value) in &serial.counters {
        assert_eq!(value, &parallel.counters[name], "counter {name} diverged");
    }
    for (name, value) in &serial.gauges {
        assert_eq!(
            value.to_bits(),
            parallel.gauges[name].to_bits(),
            "gauge {name} diverged: {value} vs {}",
            parallel.gauges[name]
        );
    }
    for (name, value) in &serial.histograms {
        assert_eq!(value, &parallel.histograms[name], "histogram {name} diverged");
    }
    assert_eq!(serial, parallel);
}

#[test]
fn eval_is_batch_size_and_thread_invariant() {
    // The batched engine's packing size (`eval_batch`) and the worker
    // thread count are pure performance knobs: metrics, ranks AND the
    // observability snapshot must be bitwise-invariant to both. The
    // snapshot check covers `dekg_eval_batch_nodes` (observed once per
    // query with the pack total, not once per chunk) and the BFS cache
    // counters (deterministic sums over candidates).
    let _obs = obs_lock();
    let data = tiny_fixture(9);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut model =
        DekgIlp::new(DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() }, &data, &mut rng);
    model.fit(&data, &mut rng);
    assert_eq!(model.scoring_path(), ScoringPath::Batched);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));

    let mut run = |eval_batch: usize, threads: usize| {
        dekg_obs::reset();
        model.set_eval_batch(eval_batch);
        let mut protocol = ProtocolConfig::sampled(12);
        protocol.seed = 11;
        protocol.threads = threads;
        let result = evaluate(&model, &graph, &data, &mix, &protocol);
        (result.overall, result.enclosing, result.bridging, dekg_obs::metrics_snapshot())
    };
    let base = run(64, 1);
    assert!(base.3.counters["dekg_eval_bfs_cache_hits_total"] > 0, "cache never hit");
    assert!(base.3.histograms["dekg_eval_batch_nodes"].count > 0, "no packs recorded");
    for (eval_batch, threads) in [(1, 1), (5, 1), (64, 4), (3, 4), (256, 2)] {
        let other = run(eval_batch, threads);
        assert_eq!(base.0, other.0, "eval_batch={eval_batch} threads={threads}");
        assert_eq!(base.1, other.1, "eval_batch={eval_batch} threads={threads}");
        assert_eq!(base.2, other.2, "eval_batch={eval_batch} threads={threads}");
        assert_eq!(base.3, other.3, "snapshot diverged: eval_batch={eval_batch} threads={threads}");
    }
}

#[test]
fn jsonl_sink_round_trips() {
    let _obs = obs_lock();
    let dir = std::env::temp_dir();
    let metrics_path = dir.join(format!("dekg_obs_m_{}.jsonl", std::process::id()));
    let trace_path = dir.join(format!("dekg_obs_t_{}.jsonl", std::process::id()));
    dekg_obs::reset();
    dekg_obs::set_metrics_path(metrics_path.to_str().unwrap()).unwrap();
    dekg_obs::set_trace_path(trace_path.to_str().unwrap()).unwrap();

    let data = tiny_fixture(8);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model =
        DekgIlp::new(DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() }, &data, &mut rng);
    model.fit(&data, &mut rng);
    dekg_obs::finish();
    dekg_obs::event::clear_sinks();

    for path in [&metrics_path, &trace_path] {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(!text.trim().is_empty(), "{} is empty", path.display());
        let mut kinds = Vec::new();
        for line in text.lines().filter(|l| !l.is_empty()) {
            // Schema: each line is a JSON object whose first key is the
            // "event" kind, and it round-trips byte-identically.
            let v = serde_json::parse_value(line).expect("line parses");
            assert_eq!(serde_json::to_string(&v).unwrap(), line, "round-trip mismatch");
            let serde::Value::Object(pairs) = &v else { panic!("event is not an object") };
            let Some((key, serde::Value::Str(kind))) = pairs.first() else {
                panic!("first key is not a string");
            };
            assert_eq!(key, "event");
            kinds.push(kind.clone());
        }
        std::fs::remove_file(path).ok();
        if path == &metrics_path {
            for required in ["train_step", "epoch", "metrics"] {
                assert!(kinds.iter().any(|k| k == required), "missing {required} event");
            }
        }
    }

    // The typed snapshot round-trips through the serde shims too.
    let snap = dekg_obs::metrics_snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: dekg_obs::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);
}
