//! End-to-end integration: dataset generation → training → filtered
//! evaluation, reproducing the paper's headline *shape* on a scaled
//! benchmark — DEKG-ILP handles bridging links that collapse for
//! subgraph-only baselines.
//!
//! All seeds are fixed, so these assertions are deterministic.

use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn benchmark(seed: u64) -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Nell995, SplitKind::Eq).scaled(0.05);
    let mut cfg = SynthConfig::for_profile(profile, seed);
    cfg.num_test_enclosing = 24;
    cfg.num_test_bridging = 24;
    generate(&cfg)
}

fn protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig::sampled(25);
    p.seed = 17;
    p
}

#[test]
fn dekg_ilp_full_pipeline_beats_random() {
    let data = benchmark(1);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model =
        DekgIlp::new(DekgIlpConfig { epochs: 6, ..DekgIlpConfig::quick() }, &data, &mut rng);
    let report = model.fit(&data, &mut rng);
    assert!(report.improved(), "training must reduce the loss: {report:?}");

    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let result = evaluate(&model, &graph, &data, &mix, &protocol());

    // Random ranking over ~26 candidates has MRR ≈ 0.15 and
    // Hits@10 ≈ 0.38; a trained model must clearly beat both overall.
    assert!(result.overall.mrr > 0.25, "mrr = {}", result.overall.mrr);
    assert!(result.overall.hits_at(10) > 0.5, "h@10 = {}", result.overall.hits_at(10));
    // And the bridging side must carry real signal (the paper's point).
    assert!(result.bridging.hits_at(10) > 0.45, "bridging h@10 = {}", result.bridging.hits_at(10));
}

#[test]
fn dekg_ilp_outranks_grail_on_bridging_links() {
    let data = benchmark(2);
    let mut rng = ChaCha8Rng::seed_from_u64(0);

    let mut ilp =
        DekgIlp::new(DekgIlpConfig { epochs: 6, ..DekgIlpConfig::quick() }, &data, &mut rng);
    ilp.fit(&data, &mut rng);
    let mut grail = Grail::new(
        SubgraphModelConfig { epochs: 6, ..SubgraphModelConfig::quick() },
        &data,
        &mut rng,
    );
    grail.fit(&data, &mut rng);

    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let p = protocol();
    let r_ilp = evaluate(&ilp, &graph, &data, &mix, &p);
    let r_grail = evaluate(&grail, &graph, &data, &mix, &p);

    assert!(
        r_ilp.bridging.mrr > r_grail.bridging.mrr,
        "DEKG-ILP bridging MRR {} must beat GraIL's {}",
        r_ilp.bridging.mrr,
        r_grail.bridging.mrr
    );
}

#[test]
fn rulen_mines_and_scores_enclosing_but_not_bridging() {
    let data = benchmark(3);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut rulen = RuleN::new(Default::default());
    rulen.fit(&data, &mut rng);

    let graph = InferenceGraph::from_dataset(&data);
    // Every bridging truth must score exactly zero: no rule body can
    // cross the disconnected boundary.
    let bridging_scores = rulen.score_batch(&graph, &data.test_bridging);
    assert!(
        bridging_scores.iter().all(|&s| s == 0.0),
        "bridging scores must be 0: {bridging_scores:?}"
    );
}

#[test]
fn transductive_baselines_train_and_evaluate() {
    let data = benchmark(4);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let emb = EmbeddingConfig { epochs: 15, ..EmbeddingConfig::quick() };

    let mut transe = TransE::new(emb.clone(), &data, &mut rng);
    assert!(transe.fit(&data, &mut rng).improved());
    let mut rotate = RotatE::new(emb, &data, &mut rng);
    assert!(rotate.fit(&data, &mut rng).improved());

    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let p = protocol();
    for model in [&transe as &dyn LinkPredictor, &rotate] {
        let r = evaluate(model, &graph, &data, &mix, &p);
        assert!(r.overall.mrr.is_finite());
        assert!(r.overall.count > 0);
    }
}

#[test]
fn ablations_run_end_to_end() {
    let data = benchmark(5);
    for ablation in [
        Ablation::full(),
        Ablation::without_semantic(),
        Ablation::without_contrastive(),
        Ablation::without_improved_labeling(),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = DekgIlpConfig { ablation, epochs: 2, ..DekgIlpConfig::quick() };
        let mut model = DekgIlp::new(cfg, &data, &mut rng);
        model.fit(&data, &mut rng);
        let graph = InferenceGraph::from_dataset(&data);
        let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Me));
        let p = ProtocolConfig { num_candidates: Some(10), seed: 2, ..Default::default() };
        let r = evaluate(&model, &graph, &data, &mix, &p);
        assert!(r.overall.mrr.is_finite(), "{}", model.name());
    }
}

#[test]
fn gsm_sees_real_subgraph_signal_on_enclosing_links() {
    // DEKG-ILP-R (no semantic branch) still predicts enclosing links
    // from topology alone — verifying GSM is not dead weight.
    let data = benchmark(6);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let cfg = DekgIlpConfig {
        ablation: Ablation::without_semantic(),
        epochs: 6,
        ..DekgIlpConfig::quick()
    };
    let mut model = DekgIlp::new(cfg, &data, &mut rng);
    model.fit(&data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let r = evaluate(&model, &graph, &data, &mix, &protocol());
    // Better than the ~0.38 random Hits@10 on enclosing links.
    assert!(r.enclosing.hits_at(10) > 0.42, "enclosing h@10 = {}", r.enclosing.hits_at(10));
}
