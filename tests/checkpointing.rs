//! Model checkpointing: trained parameters survive a serialize/restore
//! roundtrip with bit-identical scoring.

use dekg::prelude::*;
use dekg::tensor::serialize::{decode, encode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset() -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
    generate(&SynthConfig::for_profile(profile, 31))
}

#[test]
fn dekg_ilp_checkpoint_roundtrip() {
    let data = dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let cfg = DekgIlpConfig { epochs: 2, ..DekgIlpConfig::quick() };
    let mut model = DekgIlp::new(cfg.clone(), &data, &mut rng);
    model.fit(&data, &mut rng);

    let graph = InferenceGraph::from_dataset(&data);
    let batch = &data.test_bridging[..5.min(data.test_bridging.len())];
    let before = model.score_batch(&graph, batch);

    // Serialize, then restore into a fresh model skeleton.
    let bytes = encode(model.params());
    let restored_params = decode(&bytes).expect("decode");
    let mut rng2 = ChaCha8Rng::seed_from_u64(999); // different init seed on purpose
    let mut restored = DekgIlp::new(cfg, &data, &mut rng2);
    *restored.params_mut() = restored_params;

    let after = restored.score_batch(&graph, batch);
    assert_eq!(before, after, "restored model must score identically");
}

#[test]
fn checkpoint_preserves_every_parameter() {
    let data = dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut model =
        TransE::new(EmbeddingConfig { epochs: 2, ..EmbeddingConfig::quick() }, &data, &mut rng);
    model.fit(&data, &mut rng);

    // TransE exposes no params() accessor on the trait; serialize via
    // a second fit-free model is not possible — so this test uses the
    // DekgIlp surface above for scoring and checks raw-store fidelity
    // here with a hand-built store.
    use dekg::tensor::{ParamStore, Tensor};
    let mut ps = ParamStore::new();
    ps.insert("a", Tensor::from_vec([2, 2], vec![1.0, -2.0, 3.5, 0.25]));
    ps.insert("b", Tensor::scalar(42.0));
    let back = decode(&encode(&ps)).unwrap();
    assert_eq!(back.len(), ps.len());
    for (_, name, value) in ps.iter() {
        let id = back.id_of(name).unwrap();
        assert_eq!(back.get(id), value, "{name}");
    }
}

#[test]
fn disk_checkpoint_roundtrip() {
    let data = dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let cfg = DekgIlpConfig { epochs: 2, ..DekgIlpConfig::quick() };
    let mut model = DekgIlp::new(cfg.clone(), &data, &mut rng);
    model.fit(&data, &mut rng);

    let path = std::env::temp_dir().join("dekg_ckpt_roundtrip.bin");
    model.save_checkpoint(&path).unwrap();

    let graph = InferenceGraph::from_dataset(&data);
    let batch = &data.test_enclosing[..4.min(data.test_enclosing.len())];
    let before = model.score_batch(&graph, batch);

    let mut rng2 = ChaCha8Rng::seed_from_u64(12345);
    let mut restored = DekgIlp::new(cfg, &data, &mut rng2);
    restored.load_checkpoint(&path).unwrap();
    assert_eq!(restored.score_batch(&graph, batch), before);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoint_is_rejected_not_misread() {
    let data = dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
    let mut bytes = encode(model.params()).to_vec();
    // Flip the magic.
    bytes[0] ^= 0xFF;
    assert!(decode(&bytes).is_err());
    // Truncate the tail.
    let bytes2 = encode(model.params());
    assert!(decode(&bytes2[..bytes2.len() / 2]).is_err());
}
