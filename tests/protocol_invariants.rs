//! Cross-crate invariants of the evaluation protocol and the DEKG
//! data model.

use dekg::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset(seed: u64) -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.03);
    generate(&SynthConfig::for_profile(profile, seed))
}

/// Scores by entity-id sum — deterministic, graph-independent.
struct IdSum;

impl LinkPredictor for IdSum {
    fn name(&self) -> &'static str {
        "idsum"
    }
    fn score_batch(&self, _g: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
        triples.iter().map(|t| (t.head.0 as f32) * 0.001 + (t.tail.0 as f32) * 0.0001).collect()
    }
    fn num_parameters(&self) -> usize {
        0
    }
}

#[test]
fn full_protocol_filters_known_triples() {
    let data = dataset(1);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    // Full protocol, no sampling: evaluating twice must be identical
    // (no hidden nondeterminism in candidate construction).
    let cfg = ProtocolConfig::default();
    let a = evaluate(&IdSum, &graph, &data, &mix, &cfg);
    let b = evaluate(&IdSum, &graph, &data, &mix, &cfg);
    assert_eq!(a.overall, b.overall);
}

#[test]
fn better_models_get_better_metrics() {
    // An oracle that knows the truths must dominate a constant scorer
    // on every metric — a basic monotonicity check of the harness.
    struct Oracle(TripleStore);
    impl LinkPredictor for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn score_batch(&self, _g: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            triples.iter().map(|t| if self.0.contains(t) { 1.0 } else { 0.0 }).collect()
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }
    struct Zero;
    impl LinkPredictor for Zero {
        fn name(&self) -> &'static str {
            "zero"
        }
        fn score_batch(&self, _g: &InferenceGraph, triples: &[Triple]) -> Vec<f32> {
            vec![0.0; triples.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    let data = dataset(2);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let mut truths = TripleStore::new();
    for (t, _) in &mix.links {
        truths.insert(*t);
    }
    let cfg = ProtocolConfig::default();
    let oracle = evaluate(&Oracle(truths), &graph, &data, &mix, &cfg);
    let zero = evaluate(&Zero, &graph, &data, &mix, &cfg);
    assert!(oracle.overall.mrr > zero.overall.mrr);
    assert!(oracle.overall.hits_at(1) > zero.overall.hits_at(1));
    assert!(oracle.bridging.mrr > zero.bridging.mrr);
}

#[test]
fn mix_ratios_respected_across_all_splits() {
    let data = dataset(3);
    for split in SplitKind::all() {
        let mix = TestMix::build(&data, MixRatio::for_split(split));
        let (e, b) = mix.class_counts();
        let (re, rb) = split.ratio();
        assert_eq!(e * rb, b * re, "{split:?}: {e}:{b} vs {re}:{rb}");
    }
}

#[test]
fn inference_graph_is_union_without_leakage() {
    let data = dataset(4);
    let graph = InferenceGraph::from_dataset(&data);
    // Every observed triple present…
    for t in data.original.triples().iter().chain(data.emerging.triples()) {
        assert!(graph.store.contains(t));
    }
    // …and no held-out link leaked in.
    for t in data.valid.iter().chain(&data.test_enclosing).chain(&data.test_bridging) {
        assert!(!graph.store.contains(t), "held-out {t} leaked into the inference graph");
    }
}

#[test]
fn bridging_subgraphs_disconnected_enclosing_not_pruned() {
    let data = dataset(5);
    let graph = InferenceGraph::from_dataset(&data);
    let extractor = SubgraphExtractor::new(&graph.adjacency, 2, ExtractionMode::Union);
    for t in &data.test_bridging {
        let sg = extractor.extract(t.head, t.tail, None);
        assert!(sg.is_disconnected(), "bridging subgraph for {t} should be disconnected");
        // Union extraction must retain more than just the endpoints
        // whenever either side has neighbors.
        let head_deg = graph.adjacency.degree(t.head);
        let tail_deg = graph.adjacency.degree(t.tail);
        if head_deg + tail_deg > 0 {
            assert!(sg.num_nodes() > 2, "union extraction kept only endpoints for {t}");
        }
    }
}

#[test]
fn capability_matrix_agrees_with_observed_behaviour() {
    // Table I says RuleN cannot do bridging; check the implementation
    // agrees (scores zero ⇔ no capability).
    let data = dataset(6);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut rulen = RuleN::new(Default::default());
    rulen.fit(&data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let cap = capability_of("RuleN");
    assert!(!cap.dekg_bridging);
    assert!(rulen.score_batch(&graph, &data.test_bridging).iter().all(|&s| s == 0.0));
}

#[test]
fn every_table1_model_is_implemented_and_trainable() {
    // Table I lists ten methods; all ten exist in this repository and
    // train end-to-end on a DEKG dataset.
    use dekg::baselines::{conve::ConvEConfig, NeuralLpConfig};
    let d = dataset(10);
    let quick_embed = EmbeddingConfig { epochs: 2, ..EmbeddingConfig::quick() };
    let quick_sub = SubgraphModelConfig { epochs: 1, ..SubgraphModelConfig::quick() };
    let quick_ilp = DekgIlpConfig { epochs: 1, ..DekgIlpConfig::quick() };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut models: Vec<Box<dyn TrainableModel>> = vec![
        Box::new(TransE::new(quick_embed.clone(), &d, &mut rng)),
        Box::new(RotatE::new(quick_embed.clone(), &d, &mut rng)),
        Box::new(ConvE::new(
            ConvEConfig { embed: quick_embed.clone(), ..ConvEConfig::quick() },
            &d,
            &mut rng,
        )),
        Box::new(Mean::new(quick_embed.clone(), &d, &mut rng)),
        Box::new(Gen::new(quick_embed, &d, &mut rng)),
        Box::new(NeuralLp::new(NeuralLpConfig { epochs: 2, ..Default::default() })),
        Box::new(RuleN::new(Default::default())),
        Box::new(Grail::new(quick_sub.clone(), &d, &mut rng)),
        Box::new(Tact::new(quick_sub, &d, &mut rng)),
        Box::new(DekgIlp::new(quick_ilp, &d, &mut rng)),
    ];
    let graph = InferenceGraph::from_dataset(&d);
    let mut names = Vec::new();
    for model in &mut models {
        let report = model.fit(&d, &mut rng);
        assert!(report.final_loss.is_finite(), "{}", model.name());
        let s = model.score(&graph, &d.test_enclosing[0]);
        assert!(s.is_finite(), "{}", model.name());
        names.push(model.name());
    }
    // Names align with Table I's rows (same spelling).
    for name in &names {
        let _ = capability_of(name); // panics on unknown names
    }
    assert_eq!(names.len(), 10);
}

#[test]
fn rule_family_cannot_score_bridging_links() {
    // Table I: both rule-based methods lack DEKG-bridging capability;
    // their implementations must agree (exact zeros).
    use dekg::baselines::NeuralLpConfig;
    let d = dataset(11);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let graph = InferenceGraph::from_dataset(&d);

    let mut rulen = RuleN::new(Default::default());
    rulen.fit(&d, &mut rng);
    let mut nlp = NeuralLp::new(NeuralLpConfig { epochs: 2, ..Default::default() });
    nlp.fit(&d, &mut rng);

    for model in [&rulen as &dyn LinkPredictor, &nlp] {
        assert!(!capability_of(model.name()).dekg_bridging);
        let scores = model.score_batch(&graph, &d.test_bridging);
        assert!(
            scores.iter().all(|&s| s == 0.0),
            "{} must score 0 on bridging links: {scores:?}",
            model.name()
        );
    }
}

#[test]
fn train_report_seconds_are_measured() {
    let data = dataset(7);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model =
        TransE::new(EmbeddingConfig { epochs: 2, ..EmbeddingConfig::quick() }, &data, &mut rng);
    let report = model.fit(&data, &mut rng);
    assert!(report.seconds > 0.0);
    assert_eq!(report.epochs, 2);
}
