//! Failure-injection and edge-case tests: the stack must fail loudly
//! on misuse and behave sensibly on degenerate-but-legal inputs.

use dekg::prelude::*;
use dekg::tensor::{Graph, ParamStore, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_dataset() -> DekgDataset {
    let profile = DatasetProfile::table2(RawKg::Wn18rr, SplitKind::Eq).scaled(0.02);
    generate(&SynthConfig::for_profile(profile, 77))
}

// ---- loud failures on misuse ----

#[test]
#[should_panic(expected = "shape mismatch")]
fn elementwise_shape_mismatch_panics() {
    let a = Tensor::ones([2, 3]);
    let b = Tensor::ones([3, 2]);
    let _ = a.add(&b);
}

#[test]
#[should_panic(expected = "matmul inner dims")]
fn matmul_dim_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::ones([2, 3]));
    let b = g.constant(Tensor::ones([2, 3]));
    g.matmul(a, b);
}

#[test]
#[should_panic(expected = "out of bounds")]
fn gather_out_of_bounds_panics() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::ones([2, 3]));
    g.gather_rows(a, &[5]);
}

#[test]
#[should_panic(expected = "dropout rate")]
fn dropout_rate_one_rejected() {
    let mut g = Graph::new();
    let a = g.constant(Tensor::ones([2]));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    g.dropout(a, 1.0, &mut rng);
}

#[test]
#[should_panic(expected = "epochs must be positive")]
fn zero_epoch_config_rejected() {
    let data = tiny_dataset();
    let cfg = DekgIlpConfig { epochs: 0, ..DekgIlpConfig::quick() };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let _ = DekgIlp::new(cfg, &data, &mut rng);
}

// ---- degenerate-but-legal inputs ----

#[test]
fn scoring_self_loop_candidates_is_fine() {
    // Corruption can propose (e, r, e); the whole stack must score it.
    let data = tiny_dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let e = EntityId(0);
    let s = model.score(&graph, &Triple::new(e, RelationId(0), e));
    assert!(s.is_finite());
}

#[test]
fn scoring_isolated_pair_is_fine() {
    // Candidate between two entities with zero degree in the inference
    // graph (possible when ranking against unseen candidates).
    let data = tiny_dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
    // Training view: G' entities have no edges at all.
    let graph = InferenceGraph::training_view(&data);
    let a = EntityId(data.num_original_entities as u32);
    let b = EntityId(data.num_original_entities as u32 + 1);
    let s = model.score(&graph, &Triple::new(a, RelationId(0), b));
    assert!(s.is_finite());
}

#[test]
fn single_triple_training_works() {
    // A one-fact original KG is legal; training must not divide by zero
    // or panic on tiny batches.
    let mut vocab = Vocab::new();
    for n in ["a", "b", "x", "y"] {
        vocab.intern_entity(n);
    }
    vocab.intern_relation("r");
    let data = DekgDataset {
        name: "micro".into(),
        vocab,
        num_original_entities: 2,
        num_relations: 1,
        original: TripleStore::from_triples([Triple::from_raw(0, 0, 1)]),
        emerging: TripleStore::from_triples([Triple::from_raw(2, 0, 3)]),
        valid: vec![],
        test_enclosing: vec![Triple::from_raw(3, 0, 2)],
        test_bridging: vec![Triple::from_raw(0, 0, 2)],
    };
    data.validate();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = DekgIlp::new(
        DekgIlpConfig { epochs: 2, batch_size: 4, ..DekgIlpConfig::quick() },
        &data,
        &mut rng,
    );
    let report = model.fit(&data, &mut rng);
    assert!(report.final_loss.is_finite());
    let graph = InferenceGraph::from_dataset(&data);
    assert!(model.score(&graph, &data.test_bridging[0]).is_finite());
}

#[test]
fn optimizer_handles_zero_gradients() {
    use dekg::tensor::optim::{Adam, Optimizer};
    let mut ps = ParamStore::new();
    let w = ps.insert("w", Tensor::ones([3]));
    let mut g = Graph::new();
    let wv = g.param(&ps, w);
    let zero = g.constant(Tensor::zeros([3]));
    let prod = g.mul(wv, zero);
    let loss = g.sum_all(prod);
    let mut grads = g.backward(loss);
    // Clipping a zero-norm gradient set must be a no-op, not a NaN.
    grads.clip_global_norm(1.0);
    let mut opt = Adam::new(0.1);
    opt.step(&mut ps, &grads);
    assert!(!ps.get(w).has_non_finite());
}

#[test]
fn contrastive_sampling_on_single_relation_universe() {
    use dekg::core::clrm::sampling;
    use dekg::kg::ComponentRow;
    // One relation total: o2 can never fire; negatives must still
    // differ (o3 deletes the only relation) without panicking.
    let row = ComponentRow::from_pairs([(RelationId(0), 3)]);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for _ in 0..50 {
        let n = sampling::negative_example(&row, 1, 2.0, &mut rng);
        // Either emptied (deletion) or unchanged set is impossible:
        assert!(n.is_empty() || n.count(RelationId(0)) > 0);
    }
}

#[test]
fn empty_rank_candidates_means_rank_one() {
    // A fully filtered candidate set leaves only the truth.
    assert_eq!(dekg::eval::rank_of(0.5, &[]), 1.0);
}

#[test]
fn evaluation_with_tiny_candidate_cap() {
    let data = tiny_dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio { enclosing: 1, bridging: 1 });
    let cfg = ProtocolConfig { num_candidates: Some(1), seed: 5, ..Default::default() };
    let r = evaluate(&model, &graph, &data, &mix, &cfg);
    // With one candidate, every rank is 1, 1.5 or 2 → MRR ≥ 0.5.
    assert!(r.overall.mrr >= 0.5, "mrr = {}", r.overall.mrr);
}

#[test]
fn untrained_model_is_roughly_random() {
    let data = tiny_dataset();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let model = DekgIlp::new(DekgIlpConfig::quick(), &data, &mut rng);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio { enclosing: 1, bridging: 1 });
    let cfg = ProtocolConfig {
        num_candidates: Some(20),
        seed: 9,
        tasks: vec![PredictionTask::Head, PredictionTask::Tail],
        ..Default::default()
    };
    let r = evaluate(&model, &graph, &data, &mix, &cfg);
    // Untrained scores are arbitrary but finite; MRR must land well
    // below a trained model's and above zero.
    assert!(r.overall.mrr > 0.0 && r.overall.mrr < 0.5, "mrr = {}", r.overall.mrr);
}
