//! The batched candidate-ranking engine == the per-candidate paths,
//! bitwise.
//!
//! [`ScoringPath::Batched`] packs candidate subgraphs block-diagonally,
//! reuses the fixed endpoint's BFS across candidates and scores through
//! reusable workspaces — all of which promise *bitwise* equality with
//! the per-candidate forward path and the autograd tape. These tests
//! pin that contract end-to-end: same ranks, same metrics, same
//! observability counters, for every `num_bases` variant and for the
//! disconnected (bridging-link) subgraphs the paper is about.

use dekg::prelude::*;
use dekg_datasets::tiny_fixture;
use dekg_eval::ranking::filtered_candidates;
use dekg_eval::{evaluate, filtered_rank, RankQuery};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The metrics registry is process-global and cargo runs this binary's
/// tests on parallel threads — tests that reset or read it take this
/// lock.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const PATHS: [ScoringPath; 3] =
    [ScoringPath::Batched, ScoringPath::Inference, ScoringPath::TapeReference];

fn trained_model(data: &DekgDataset, num_bases: Option<usize>, seed: u64) -> DekgIlp {
    let cfg = DekgIlpConfig { epochs: 1, num_bases, ..DekgIlpConfig::quick() };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = DekgIlp::new(cfg, data, &mut rng);
    model.fit(data, &mut rng);
    model
}

/// Every scoring path must produce identical ranks for every prediction
/// form, on enclosing links and on bridging links (whose subgraphs are
/// disconnected), under both relation-weight layouts.
#[test]
fn ranks_are_bitwise_identical_across_scoring_paths() {
    let _obs = obs_lock();
    let data = tiny_fixture(31);
    let graph = InferenceGraph::from_dataset(&data);
    let filter = graph.store.clone();
    for num_bases in [None, Some(2)] {
        let mut model = trained_model(&data, num_bases, 13);
        // One enclosing link (connected subgraph) and one bridging link
        // (disconnected subgraph), all three prediction forms.
        let links = [data.test_enclosing[0], data.test_bridging[0]];
        for link in links {
            let queries = [RankQuery::Head(link), RankQuery::Relation(link), RankQuery::Tail(link)];
            for query in queries {
                let ranks: Vec<f64> = PATHS
                    .iter()
                    .map(|&path| {
                        model.set_scoring_path(path);
                        let mut rng = ChaCha8Rng::seed_from_u64(5);
                        filtered_rank(&model, &graph, &query, &filter, Some(15), &mut rng)
                    })
                    .collect();
                assert_eq!(
                    ranks[0], ranks[1],
                    "batched vs per-candidate diverged: {num_bases:?} {query:?}"
                );
                assert_eq!(
                    ranks[1], ranks[2],
                    "per-candidate vs tape diverged: {num_bases:?} {query:?}"
                );
            }
        }
    }
}

/// Whole-protocol metrics must agree across the three paths — every
/// query, every class breakdown, every prediction form.
#[test]
fn protocol_metrics_are_identical_across_scoring_paths() {
    let _obs = obs_lock();
    let data = tiny_fixture(32);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let mut protocol = ProtocolConfig::sampled(12);
    protocol.seed = 17;
    for num_bases in [None, Some(2)] {
        let mut model = trained_model(&data, num_bases, 21);
        let results: Vec<EvalResult> = PATHS
            .iter()
            .map(|&path| {
                model.set_scoring_path(path);
                evaluate(&model, &graph, &data, &mix, &protocol)
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(results[0].overall, r.overall, "num_bases {num_bases:?}");
            assert_eq!(results[0].enclosing, r.enclosing, "num_bases {num_bases:?}");
            assert_eq!(results[0].bridging, r.bridging, "num_bases {num_bases:?}");
            assert_eq!(results[0].by_task, r.by_task, "num_bases {num_bases:?}");
        }
    }
}

/// Structure-free (mixed) batches take the per-candidate fallback —
/// scores must still be bitwise identical, including empty and
/// singleton batches.
#[test]
fn mixed_and_degenerate_batches_match() {
    let _obs = obs_lock();
    let data = tiny_fixture(33);
    let graph = InferenceGraph::from_dataset(&data);
    let mut model = trained_model(&data, Some(2), 3);

    // A mixed-relation, mixed-endpoint batch: no shared structure.
    let mixed: Vec<Triple> =
        data.test_enclosing.iter().chain(&data.test_bridging).copied().take(6).collect();
    let singleton = vec![mixed[0]];
    let empty: Vec<Triple> = Vec::new();

    for batch in [&mixed, &singleton, &empty] {
        model.set_scoring_path(ScoringPath::Batched);
        let batched = model.score_batch(&graph, batch);
        model.set_scoring_path(ScoringPath::Inference);
        let per_candidate = model.score_batch(&graph, batch);
        assert_eq!(batched, per_candidate);
        assert_eq!(batched.len(), batch.len());
    }
}

/// The `dekg_eval_candidates` histogram records the *scored* batch size
/// — candidates plus the truth.
#[test]
fn candidates_histogram_counts_the_truth() {
    let _obs = obs_lock();
    let data = tiny_fixture(34);
    let graph = InferenceGraph::from_dataset(&data);
    let filter = graph.store.clone();
    let model = trained_model(&data, None, 7);
    let query = RankQuery::Tail(data.test_enclosing[0]);

    // Reproduce the candidate set the ranked query will sample.
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let expected = filtered_candidates(
        &query,
        graph.num_entities,
        graph.num_relations,
        &filter,
        Some(10),
        &mut rng,
    )
    .len();

    dekg_obs::reset();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    filtered_rank(&model, &graph, &query, &filter, Some(10), &mut rng);
    let snap = dekg_obs::metrics_snapshot();
    let h = &snap.histograms["dekg_eval_candidates"];
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, expected as u64 + 1, "histogram must include the truth");
}

/// The batched engine's own metrics: one `dekg_eval_batch_nodes`
/// observation per ranked query (invariant to chunking), and the BFS
/// cache counters accounting for every entity-query candidate.
#[test]
fn batched_engine_metrics_are_recorded() {
    let _obs = obs_lock();
    let data = tiny_fixture(35);
    let graph = InferenceGraph::from_dataset(&data);
    let mix = TestMix::build(&data, MixRatio::for_split(SplitKind::Eq));
    let mut protocol = ProtocolConfig::sampled(8);
    protocol.seed = 2;
    let model = trained_model(&data, None, 11);

    dekg_obs::reset();
    evaluate(&model, &graph, &data, &mix, &protocol);
    let snap = dekg_obs::metrics_snapshot();
    let queries = snap.counters["dekg_eval_queries_total"];
    assert!(queries > 0);
    // Every ranking query is shape-detected (head/tail → entity query,
    // relation → fixed pair); each observes the packed total exactly once.
    assert_eq!(snap.histograms["dekg_eval_batch_nodes"].count, queries);
    let hits = snap.counters["dekg_eval_bfs_cache_hits_total"];
    let misses = snap.counters["dekg_eval_bfs_cache_misses_total"];
    assert!(hits + misses > 0, "entity queries must exercise the BFS cache");
}

/// Observations past the last bound land in the histogram's implicit
/// `+Inf` overflow bucket — full-entity candidate sets (beyond the
/// 4096 cap of `dekg_eval_candidates`) stay counted.
#[test]
fn histogram_overflow_bucket_catches_large_batches() {
    // Private registry: no global state, no lock needed.
    let reg = dekg_obs::metrics::Registry::new();
    let h = reg.histogram("test_candidates", &[8, 16, 32, 64, 128, 256, 512, 1024, 4096]);
    h.observe(4096); // last bounded bucket
    h.observe(4097); // overflow
    h.observe(50_000); // deep overflow
    let buckets = h.bucket_counts();
    assert_eq!(buckets.len(), 10, "bounds + implicit +Inf slot");
    assert_eq!(buckets[8], 1, "4096 lands in the last bounded bucket");
    assert_eq!(buckets[9], 2, "past-bound observations land in +Inf");
    assert_eq!(h.count(), 3);
}
